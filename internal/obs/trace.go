// Package obs is the observability layer of the simulator: a
// low-overhead span tracer that records per-superstep/per-group phase
// intervals as Chrome trace_event JSON, a metrics registry exposing
// the run's counters and duration histograms in JSON and
// Prometheus-text form, and a per-phase wall-clock report.
//
// Everything in this package is wall-clock observability, deliberately
// OUTSIDE the model: nothing here feeds the config fingerprint or the
// bitwise-identity contract that covers the engines' results (the same
// carve-out as EMStats.Overlap). A nil *Tracer or *Registry is a
// valid, zero-cost no-op — every method checks its receiver and skips
// even the clock read — so the engines thread the pointers
// unconditionally and pay nothing when observability is off.
package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
	"unicode/utf8"
)

// Span categories. Engine-category spans tile a processor's timeline
// exclusively (no two overlap on one processor), so their durations
// sum to the run's wall clock; io-category spans are the physical
// transfers running concurrently underneath them.
const (
	CatEngine = "engine"
	CatIO     = "io"
)

// phaseAgg accumulates one phase's totals for the report.
type phaseAgg struct {
	count int64
	nanos int64
}

// Tracer records spans. It is safe for concurrent use; the engines'
// per-processor goroutines and the file store's I/O workers all share
// one tracer. A nil tracer is a no-op on every method.
//
// The trace file is the Chrome trace_event JSON array format, one
// event per line. The array is deliberately never closed with "]":
// Chrome's loader (and DecodeTrace) accept the unterminated array,
// which is what lets a trace survive a crash mid-run and be reopened
// in append mode by a resumed run.
type Tracer struct {
	epoch time.Time // set once at construction; read without the lock

	mu  sync.Mutex
	f   *os.File
	w   *bufio.Writer
	buf []byte // scratch for one encoded event
	agg map[string]*phaseAgg
	reg *Registry
	err error // first write error; reported by Flush/Close
}

// New returns a memory-only tracer: spans are aggregated per phase
// (for Phases and WriteReport) but no trace file is written.
func New() *Tracer {
	return &Tracer{epoch: time.Now(), agg: make(map[string]*phaseAgg)}
}

// Open returns a tracer writing trace_event JSON to path. With resume
// false the file is created fresh; with resume true it is opened in
// append mode and a "resume" instant event marks the boundary, so a
// crashed-and-resumed run yields one continuous trace (timestamps
// restart at the resumed process's epoch).
func Open(path string, resume bool) (*Tracer, error) {
	flags := os.O_WRONLY | os.O_CREATE
	if resume {
		flags |= os.O_APPEND
	} else {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o666)
	if err != nil {
		return nil, err
	}
	t := New()
	t.f = f
	t.w = bufio.NewWriterSize(f, 64<<10)
	header := !resume
	if resume {
		if st, serr := f.Stat(); serr == nil && st.Size() == 0 {
			header = true // nothing to append to: start a fresh array
		}
	}
	if header {
		if _, err := t.w.WriteString("[\n"); err != nil {
			f.Close()
			return nil, err
		}
	}
	if resume {
		t.Instant(CatEngine, "resume", 0, 0)
	}
	return t, nil
}

// NewWriter returns a tracer writing trace_event JSON to w (the array
// header included). Tests and fuzzers use it; runs use Open or New.
func NewWriter(w io.Writer) *Tracer {
	t := New()
	t.w = bufio.NewWriterSize(w, 16<<10)
	t.w.WriteString("[\n") //nolint:errcheck // surfaces on Flush
	return t
}

// AttachRegistry mirrors every completed span into a per-phase
// duration histogram of r (metric "phase_<name>").
func (t *Tracer) AttachRegistry(r *Registry) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.reg = r
	t.mu.Unlock()
}

// Span is one in-flight interval, produced by Begin and finished by
// End. The zero Span (and any Span from a nil tracer) is inert.
type Span struct {
	t     *Tracer
	cat   string
	name  string
	pid   int
	tid   int
	step  int
	group int
	start time.Time
}

// Begin starts a span with no step/group arguments. pid is the
// processor (Chrome process lane), tid the thread lane within it (the
// engines use 0; the file store uses 1+drive).
func (t *Tracer) Begin(cat, name string, pid, tid int) Span {
	return t.BeginStep(cat, name, pid, tid, -1, -1)
}

// BeginStep starts a span annotated with a superstep index and group
// index (either may be -1 to omit it).
func (t *Tracer) BeginStep(cat, name string, pid, tid, step, group int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, cat: cat, name: name, pid: pid, tid: tid, step: step, group: group, start: time.Now()}
}

// End completes the span: it is aggregated into the per-phase totals
// and, when the tracer has an output, encoded as one complete ("X")
// trace event.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.complete(s, time.Now())
}

func (t *Tracer) complete(s Span, end time.Time) {
	dur := end.Sub(s.start)
	if dur < 0 {
		dur = 0
	}
	ts := s.start.Sub(t.epoch)
	t.mu.Lock()
	key := s.cat + "/" + s.name
	a := t.agg[key]
	if a == nil {
		a = &phaseAgg{}
		t.agg[key] = a
	}
	a.count++
	a.nanos += dur.Nanoseconds()
	reg := t.reg
	if t.w != nil {
		t.buf = appendSpanEvent(t.buf[:0], s, ts, dur)
		if _, err := t.w.Write(t.buf); err != nil && t.err == nil {
			t.err = err
		}
	}
	t.mu.Unlock()
	if reg != nil {
		reg.Histogram("phase_" + s.name).Observe(dur.Nanoseconds())
	}
}

// Instant records a zero-duration marker event (e.g. the resume
// boundary). It does not contribute to the phase totals.
func (t *Tracer) Instant(cat, name string, pid, tid int) {
	if t == nil {
		return
	}
	ts := time.Since(t.epoch)
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.w == nil {
		return
	}
	b := t.buf[:0]
	b = append(b, `{"name":`...)
	b = appendJSONString(b, name)
	b = append(b, `,"cat":`...)
	b = appendJSONString(b, cat)
	b = append(b, `,"ph":"i","s":"g","ts":`...)
	b = appendMicros(b, ts)
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, "},\n"...)
	t.buf = b
	if _, err := t.w.Write(b); err != nil && t.err == nil {
		t.err = err
	}
}

// Flush writes buffered events through to the trace file. The engines
// call it at every durable barrier, so a killed run's trace survives
// to the same superstep as its journal.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.flushLocked()
}

func (t *Tracer) flushLocked() error {
	if t.w != nil {
		if err := t.w.Flush(); err != nil && t.err == nil {
			t.err = err
		}
	}
	return t.err
}

// Close flushes and closes the trace file (leaving the JSON array
// unterminated on purpose; see the type comment). The tracer's phase
// totals remain readable after Close.
func (t *Tracer) Close() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	err := t.flushLocked()
	if t.f != nil {
		if cerr := t.f.Close(); err == nil {
			err = cerr
		}
		t.f = nil
	}
	t.w = nil
	return err
}

// PhaseTotal is one phase's aggregate: how many spans and how much
// total wall-clock time the run spent in it.
type PhaseTotal struct {
	Cat   string
	Name  string
	Count int64
	Nanos int64
}

// Phases returns the per-phase totals, sorted by category then name.
func (t *Tracer) Phases() []PhaseTotal {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]PhaseTotal, 0, len(t.agg))
	for key, a := range t.agg {
		cat, name, _ := cutString(key, '/')
		out = append(out, PhaseTotal{Cat: cat, Name: name, Count: a.count, Nanos: a.nanos})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Cat != out[j].Cat {
			return out[i].Cat < out[j].Cat
		}
		return out[i].Name < out[j].Name
	})
	return out
}

func cutString(s string, sep byte) (before, after string, found bool) {
	for i := 0; i < len(s); i++ {
		if s[i] == sep {
			return s[:i], s[i+1:], true
		}
	}
	return s, "", false
}

// appendSpanEvent encodes one complete ("X") trace event followed by
// ",\n" — the one-event-per-line array body DecodeTrace undoes.
func appendSpanEvent(b []byte, s Span, ts, dur time.Duration) []byte {
	b = append(b, `{"name":`...)
	b = appendJSONString(b, s.name)
	b = append(b, `,"cat":`...)
	b = appendJSONString(b, s.cat)
	b = append(b, `,"ph":"X","ts":`...)
	b = appendMicros(b, ts)
	b = append(b, `,"dur":`...)
	b = appendMicros(b, dur)
	b = append(b, `,"pid":`...)
	b = strconv.AppendInt(b, int64(s.pid), 10)
	b = append(b, `,"tid":`...)
	b = strconv.AppendInt(b, int64(s.tid), 10)
	if s.step >= 0 || s.group >= 0 {
		b = append(b, `,"args":{`...)
		if s.step >= 0 {
			b = append(b, `"step":`...)
			b = strconv.AppendInt(b, int64(s.step), 10)
			if s.group >= 0 {
				b = append(b, ',')
			}
		}
		if s.group >= 0 {
			b = append(b, `"group":`...)
			b = strconv.AppendInt(b, int64(s.group), 10)
		}
		b = append(b, '}')
	}
	b = append(b, "},\n"...)
	return b
}

// appendMicros formats a duration as trace_event microseconds with
// nanosecond precision (negative durations clamp to zero).
func appendMicros(b []byte, d time.Duration) []byte {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	b = strconv.AppendInt(b, ns/1000, 10)
	b = append(b, '.')
	frac := ns % 1000
	b = append(b, byte('0'+frac/100), byte('0'+frac/10%10), byte('0'+frac%10))
	return b
}

// appendJSONString appends s as a JSON string literal, escaping
// exactly what RFC 8259 requires (invalid UTF-8 becomes U+FFFD, the
// same policy as encoding/json).
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for _, r := range s {
		switch {
		case r == '"':
			b = append(b, '\\', '"')
		case r == '\\':
			b = append(b, '\\', '\\')
		case r == '\n':
			b = append(b, '\\', 'n')
		case r == '\r':
			b = append(b, '\\', 'r')
		case r == '\t':
			b = append(b, '\\', 't')
		case r < 0x20:
			const hex = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hex[r>>4], hex[r&0xF])
		default:
			b = utf8.AppendRune(b, r)
		}
	}
	return append(b, '"')
}

// Event is one decoded trace_event entry.
type Event struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	TS   float64          `json:"ts"`
	Dur  float64          `json:"dur"`
	PID  int64            `json:"pid"`
	TID  int64            `json:"tid"`
	S    string           `json:"s,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

// DecodeTrace parses a Chrome trace_event JSON array, tolerating the
// unterminated arrays this package writes (missing closing bracket,
// trailing comma) — the same leniency Chrome's own loader applies.
func DecodeTrace(data []byte) ([]Event, error) {
	s := bytes.TrimSpace(data)
	if len(s) == 0 || s[0] != '[' {
		return nil, fmt.Errorf("obs: not a trace_event array (missing '[')")
	}
	if s[len(s)-1] != ']' {
		s = bytes.TrimRight(s, " \t\r\n,")
		s = append(append(make([]byte, 0, len(s)+1), s...), ']')
	}
	var evs []Event
	if err := json.Unmarshal(s, &evs); err != nil {
		return nil, fmt.Errorf("obs: invalid trace: %w", err)
	}
	return evs, nil
}
