package obs

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndRegistryAreNoOps(t *testing.T) {
	var tr *Tracer
	sp := tr.BeginStep(CatEngine, "compute", 0, 0, 1, 2)
	sp.End()
	tr.Instant(CatEngine, "resume", 0, 0)
	if err := tr.Flush(); err != nil {
		t.Errorf("nil Flush: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if ph := tr.Phases(); ph != nil {
		t.Errorf("nil Phases: %v", ph)
	}
	tr.AttachRegistry(nil)

	var r *Registry
	r.Counter("x").Add(1)
	r.Counter("x").Set(2)
	r.Counter("x").Max(3)
	if v := r.Counter("x").Value(); v != 0 {
		t.Errorf("nil counter value %d", v)
	}
	r.Histogram("h").Observe(5)
	if s := r.Histogram("h").Snapshot(); s.Count != 0 {
		t.Errorf("nil histogram snapshot %+v", s)
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WritePrometheus: %v", err)
	}
	if err := r.WriteJSON(&bytes.Buffer{}); err != nil {
		t.Errorf("nil WriteJSON: %v", err)
	}
}

func TestTracerSpansRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tr := NewWriter(&buf)
	reg := NewRegistry()
	tr.AttachRegistry(reg)

	sp := tr.BeginStep(CatEngine, "compute", 0, 0, 3, 1)
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Begin(CatIO, "phys-read", 0, 2).End()
	tr.Instant(CatEngine, "resume", 0, 0)
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	evs, err := DecodeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3: %+v", len(evs), evs)
	}
	if evs[0].Name != "compute" || evs[0].Ph != "X" || evs[0].Cat != CatEngine {
		t.Errorf("first event %+v", evs[0])
	}
	if evs[0].Args["step"] != 3 || evs[0].Args["group"] != 1 {
		t.Errorf("step/group args %+v", evs[0].Args)
	}
	if evs[0].Dur < 900 { // ≥0.9ms in trace microseconds
		t.Errorf("compute dur %v µs, slept 1ms", evs[0].Dur)
	}
	if evs[1].TID != 2 || evs[1].Args != nil {
		t.Errorf("io event %+v", evs[1])
	}
	if evs[2].Ph != "i" || evs[2].S != "g" {
		t.Errorf("instant event %+v", evs[2])
	}

	phases := tr.Phases()
	if len(phases) != 2 {
		t.Fatalf("phases %+v", phases)
	}
	// Sorted by category then name: engine/compute, io/phys-read.
	if phases[0].Cat != CatEngine || phases[0].Name != "compute" || phases[0].Count != 1 {
		t.Errorf("phase[0] %+v", phases[0])
	}
	if phases[1].Cat != CatIO || phases[1].Name != "phys-read" {
		t.Errorf("phase[1] %+v", phases[1])
	}

	// The attached registry mirrored each span into a histogram.
	if s := reg.Histogram("phase_compute").Snapshot(); s.Count != 1 || s.SumNanos < int64(time.Millisecond/2) {
		t.Errorf("phase_compute histogram %+v", s)
	}
}

func TestTracerConcurrentUse(t *testing.T) {
	var buf bytes.Buffer
	tr := NewWriter(&buf)
	var wg sync.WaitGroup
	for p := 0; p < 8; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.BeginStep(CatEngine, "compute", p, 0, i, -1).End()
			}
		}(p)
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	evs, err := DecodeTrace(buf.Bytes())
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	if len(evs) != 400 {
		t.Errorf("got %d events, want 400", len(evs))
	}
	if ph := tr.Phases(); len(ph) != 1 || ph[0].Count != 400 {
		t.Errorf("phases %+v", ph)
	}
}

func TestOpenFreshAndResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tr, err := Open(path, false)
	if err != nil {
		t.Fatal(err)
	}
	tr.Begin(CatEngine, "setup", 0, 0).End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// A resumed run appends to the same file and marks the boundary.
	tr, err = Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	tr.Begin(CatEngine, "finish", 0, 0).End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	evs, err := DecodeTrace(data)
	if err != nil {
		t.Fatalf("DecodeTrace: %v", err)
	}
	var names []string
	for _, ev := range evs {
		names = append(names, ev.Name)
	}
	want := []string{"setup", "resume", "finish"}
	if len(names) != len(want) {
		t.Fatalf("events %v, want %v", names, want)
	}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("events %v, want %v", names, want)
		}
	}

	// Resuming into a missing/empty file degrades to a fresh array.
	empty := filepath.Join(t.TempDir(), "empty.json")
	tr, err = Open(empty, true)
	if err != nil {
		t.Fatal(err)
	}
	tr.Close()
	data, _ = os.ReadFile(empty)
	if evs, err := DecodeTrace(data); err != nil || len(evs) != 1 || evs[0].Name != "resume" {
		t.Errorf("resume-into-empty: evs=%v err=%v", evs, err)
	}
}

func TestRegistryCountersAndHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("ops").Add(3)
	r.Counter("ops").Add(4)
	if v := r.Counter("ops").Value(); v != 7 {
		t.Errorf("ops = %d, want 7", v)
	}
	r.Counter("peak").Max(5)
	r.Counter("peak").Max(2)
	if v := r.Counter("peak").Value(); v != 5 {
		t.Errorf("peak = %d, want 5", v)
	}
	h := r.Histogram("lat")
	h.Observe(500)     // ≤ 1µs bucket
	h.Observe(3_000)   // ≤ 4µs bucket
	h.Observe(1 << 62) // +Inf bucket
	s := h.Snapshot()
	if s.Count != 3 || s.Counts[0] != 1 || s.Counts[1] != 1 || s.Counts[len(s.Counts)-1] != 1 {
		t.Errorf("histogram snapshot %+v", s)
	}

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	text := prom.String()
	for _, want := range []string{
		"# TYPE embsp_ops gauge\nembsp_ops 7\n",
		"# TYPE embsp_lat_seconds histogram\n",
		`embsp_lat_seconds_bucket{le="1e-06"} 1`,
		`embsp_lat_seconds_bucket{le="+Inf"} 3`,
		"embsp_lat_seconds_count 3",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, text)
		}
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Counters     map[string]int64             `json:"counters"`
		BucketBounds []int64                      `json:"histogram_bucket_bounds_ns"`
		Histograms   map[string]HistogramSnapshot `json:"histograms"`
	}
	if err := json.Unmarshal(js.Bytes(), &doc); err != nil {
		t.Fatalf("metrics JSON does not parse: %v\n%s", err, js.String())
	}
	if doc.Counters["ops"] != 7 || doc.Histograms["lat"].Count != 3 {
		t.Errorf("metrics JSON content: %+v", doc)
	}
	if len(doc.BucketBounds) != 15 || doc.BucketBounds[0] != 1000 {
		t.Errorf("bucket bounds %v", doc.BucketBounds)
	}
}

func TestMetricsHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(2)
	srv := httptest.NewServer(r.Handler())
	defer srv.Close()

	get := func(path string) string {
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		var b bytes.Buffer
		b.ReadFrom(resp.Body) //nolint:errcheck
		return b.String()
	}
	if body := get("/metrics"); !strings.Contains(body, "embsp_hits 2") {
		t.Errorf("/metrics:\n%s", body)
	}
	if body := get("/metrics.json"); !strings.Contains(body, `"hits": 2`) {
		t.Errorf("/metrics.json:\n%s", body)
	}
}

func TestWriteReport(t *testing.T) {
	phases := []PhaseTotal{
		{Cat: CatEngine, Name: "compute", Count: 4, Nanos: 60e6},
		{Cat: CatEngine, Name: "fetch-ctx", Count: 4, Nanos: 40e6},
		{Cat: CatIO, Name: "phys-read", Count: 16, Nanos: 30e6},
	}
	var buf bytes.Buffer
	WriteReport(&buf, phases, 100*time.Millisecond)
	out := buf.String()
	for _, want := range []string{"phase report (wall clock 100ms)", "compute", "60.0%", "fetch-ctx", "(total)", "phys-read", "io spans run concurrently"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// compute (the larger phase) is listed before fetch-ctx.
	if strings.Index(out, "compute") > strings.Index(out, "fetch-ctx") {
		t.Errorf("phases not sorted by duration:\n%s", out)
	}
}

func TestDecodeTraceRejectsGarbage(t *testing.T) {
	if _, err := DecodeTrace(nil); err == nil {
		t.Error("empty input decoded")
	}
	if _, err := DecodeTrace([]byte("{}")); err == nil {
		t.Error("non-array input decoded")
	}
	if _, err := DecodeTrace([]byte("[{]")); err == nil {
		t.Error("malformed array decoded")
	}
	// The canonical terminated form decodes too.
	evs, err := DecodeTrace([]byte(`[{"name":"a","ph":"X"}]`))
	if err != nil || len(evs) != 1 {
		t.Errorf("terminated array: %v %v", evs, err)
	}
}
