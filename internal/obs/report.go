package obs

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"
	"time"
)

// WriteReport prints a per-phase wall-clock breakdown. Engine-category
// phases tile each processor's timeline exclusively, so their shares
// of the wall clock are meaningful (and, for a single-processor run,
// sum to roughly 100%); io-category spans are the physical transfers
// running concurrently underneath the engine phases and are listed
// separately without shares of their own.
func WriteReport(w io.Writer, phases []PhaseTotal, wall time.Duration) {
	fmt.Fprintf(w, "phase report (wall clock %v):\n", wall.Round(time.Microsecond))
	tw := tabwriter.NewWriter(w, 2, 0, 2, ' ', tabwriter.AlignRight)
	fmt.Fprintf(tw, "\tcat\tphase\tcount\ttotal\t%% wall\t\n")
	cats := []string{CatEngine}
	seen := map[string]bool{CatEngine: true}
	for _, p := range phases {
		if !seen[p.Cat] {
			seen[p.Cat] = true
			cats = append(cats, p.Cat)
		}
	}
	sort.Strings(cats[1:])
	for _, cat := range cats {
		var rows []PhaseTotal
		for _, p := range phases {
			if p.Cat == cat {
				rows = append(rows, p)
			}
		}
		if len(rows) == 0 {
			continue
		}
		sort.Slice(rows, func(i, j int) bool {
			if rows[i].Nanos != rows[j].Nanos {
				return rows[i].Nanos > rows[j].Nanos
			}
			return rows[i].Name < rows[j].Name
		})
		var total int64
		for _, p := range rows {
			total += p.Nanos
			fmt.Fprintf(tw, "\t%s\t%s\t%d\t%v\t%s\t\n",
				p.Cat, p.Name, p.Count,
				time.Duration(p.Nanos).Round(time.Microsecond), share(p.Nanos, wall))
		}
		fmt.Fprintf(tw, "\t%s\t(total)\t\t%v\t%s\t\n",
			cat, time.Duration(total).Round(time.Microsecond), share(total, wall))
	}
	tw.Flush()
	if seen[CatIO] {
		fmt.Fprintln(w, "note: io spans run concurrently with (and under) the engine phases;")
		fmt.Fprintln(w, "      only engine shares are fractions of a processor's timeline.")
	}
}

func share(nanos int64, wall time.Duration) string {
	if wall <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(nanos)/float64(wall.Nanoseconds()))
}
