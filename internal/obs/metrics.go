package obs

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a named scalar metric. Some are monotone sums (Add),
// some are final aggregates (Set), some are high-water marks (Max);
// the registry does not distinguish — the publisher picks the fold.
// A nil counter (from a nil registry) is a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Set replaces the counter's value.
func (c *Counter) Set(n int64) {
	if c == nil {
		return
	}
	c.v.Store(n)
}

// Max raises the counter to n if n is larger (high-water fold).
func (c *Counter) Max(n int64) {
	if c == nil {
		return
	}
	for {
		cur := c.v.Load()
		if n <= cur || c.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current value (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// histBounds are the histogram bucket upper bounds in nanoseconds:
// fixed log-spaced powers of 4 from 1µs to ~4.5min, plus an implicit
// +Inf bucket. Fixed bounds keep the exposition's shape deterministic
// — two runs differ only in which buckets the timings land in, never
// in which buckets exist.
var histBounds = func() [15]int64 {
	var b [15]int64
	v := int64(1000)
	for i := range b {
		b[i] = v
		v *= 4
	}
	return b
}()

// Histogram is a fixed-bucket duration histogram. A nil histogram is
// a no-op.
type Histogram struct {
	mu     sync.Mutex
	counts [len(histBounds) + 1]int64 // last bucket is +Inf
	n      int64
	sum    int64 // nanoseconds
}

// Observe records one duration in nanoseconds.
func (h *Histogram) Observe(nanos int64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(histBounds) && nanos > histBounds[i] {
		i++
	}
	h.mu.Lock()
	h.counts[i]++
	h.n++
	h.sum += nanos
	h.mu.Unlock()
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count    int64   `json:"count"`
	SumNanos int64   `json:"sum_ns"`
	Counts   []int64 `json:"bucket_counts"` // per bucket; last is +Inf
}

// Mean returns the mean observation as a duration (0 when empty).
func (s HistogramSnapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return time.Duration(s.SumNanos / s.Count)
}

// Snapshot returns a copy of the histogram's current state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{Count: h.n, SumNanos: h.sum, Counts: make([]int64, len(h.counts))}
	copy(s.Counts, h.counts[:])
	return s
}

// Registry holds named counters and histograms. It is safe for
// concurrent use, and a nil registry hands out nil (no-op) metrics,
// so publishers never need to guard.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// BucketBoundsNanos returns the histogram bucket upper bounds (the
// final +Inf bucket is implied).
func BucketBoundsNanos() []int64 {
	out := make([]int64, len(histBounds))
	copy(out, histBounds[:])
	return out
}

// WriteJSON writes the registry as a JSON document: counter values
// plus histogram snapshots (bucket bounds listed once).
func (r *Registry) WriteJSON(w io.Writer) error {
	type doc struct {
		Counters     map[string]int64             `json:"counters"`
		BucketBounds []int64                      `json:"histogram_bucket_bounds_ns"`
		Histograms   map[string]HistogramSnapshot `json:"histograms"`
	}
	d := doc{
		Counters:     make(map[string]int64),
		BucketBounds: BucketBoundsNanos(),
		Histograms:   make(map[string]HistogramSnapshot),
	}
	if r != nil {
		r.mu.Lock()
		counters := make(map[string]*Counter, len(r.counters))
		for n, c := range r.counters {
			counters[n] = c
		}
		hists := make(map[string]*Histogram, len(r.hists))
		for n, h := range r.hists {
			hists[n] = h
		}
		r.mu.Unlock()
		for n, c := range counters {
			d.Counters[n] = c.Value()
		}
		for n, h := range hists {
			d.Histograms[n] = h.Snapshot()
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d) // map keys are emitted sorted
}

// WritePrometheus writes the registry in the Prometheus text
// exposition format: scalar metrics as gauges, histograms with
// cumulative le buckets and second-valued sums, all names prefixed
// "embsp_" and emitted in sorted order.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	cnames := make([]string, 0, len(r.counters))
	for n := range r.counters {
		cnames = append(cnames, n)
	}
	hnames := make([]string, 0, len(r.hists))
	for n := range r.hists {
		hnames = append(hnames, n)
	}
	counters := make(map[string]*Counter, len(r.counters))
	for n, c := range r.counters {
		counters[n] = c
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.Unlock()
	sort.Strings(cnames)
	sort.Strings(hnames)
	for _, n := range cnames {
		pn := promName(n)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, counters[n].Value()); err != nil {
			return err
		}
	}
	for _, n := range hnames {
		pn := promName(n) + "_seconds"
		s := hists[n].Snapshot()
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for i, c := range s.Counts {
			cum += c
			le := "+Inf"
			if i < len(histBounds) {
				le = strconv.FormatFloat(float64(histBounds[i])/1e9, 'g', -1, 64)
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", pn, le, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", pn, float64(s.SumNanos)/1e9, pn, s.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a registry name onto a valid Prometheus metric name.
func promName(s string) string {
	b := []byte("embsp_" + s)
	for i := range b {
		c := b[i]
		if !(c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9' || c == '_' || c == ':') {
			b[i] = '_'
		}
	}
	return string(b)
}

// Handler returns an http.Handler serving /metrics (Prometheus text)
// and /metrics.json.
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	Mount(mux, r)
	return mux
}

// Mount registers the registry's /metrics (Prometheus text) and
// /metrics.json handlers on an existing mux, for servers that expose
// metrics alongside their own API (the job daemon mounts them on its
// front-end mux).
func Mount(mux *http.ServeMux, r *Registry) {
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w) //nolint:errcheck // client went away
	})
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		r.WriteJSON(w) //nolint:errcheck // client went away
	})
}

// Serve starts the debug HTTP endpoint on addr: the registry's
// /metrics and /metrics.json, the stdlib pprof pages under
// /debug/pprof/, and expvar under /debug/vars. It returns the running
// server and the address it actually listens on (useful with ":0").
// The caller owns shutdown via srv.Close.
func Serve(addr string, r *Registry) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	mux := http.NewServeMux()
	Mount(mux, r)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	return srv, ln.Addr().String(), nil
}
