package obs

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// FuzzTraceEvent cross-checks the hand-rolled trace_event encoder
// against encoding/json: whatever phase name (including invalid UTF-8,
// quotes, control bytes) and span geometry the fuzzer invents, the
// emitted line must decode, and the decoded name must match what
// encoding/json itself would produce for the same string (both
// replace invalid UTF-8 with U+FFFD).
func FuzzTraceEvent(f *testing.F) {
	f.Add("compute", "engine", 0, 0, 3, 1, int64(1500))
	f.Add("weird \"name\"\n\t", "io", 7, 2, -1, -1, int64(0))
	f.Add("\xff\xfe invalid", "engine", 1, 0, 0, -1, int64(999))
	f.Add("ünïcode ✓", "engine", 0, 0, -1, 5, int64(1<<40))
	f.Fuzz(func(t *testing.T, name, cat string, pid, tid, step, group int, durNs int64) {
		if durNs < 0 {
			durNs = -durNs
		}
		var buf bytes.Buffer
		tr := NewWriter(&buf)
		s := Span{t: tr, cat: cat, name: name, pid: pid, tid: tid, step: step, group: group, start: tr.epoch}
		tr.complete(s, tr.epoch.Add(time.Duration(durNs)))
		if err := tr.Flush(); err != nil {
			t.Fatalf("Flush: %v", err)
		}

		evs, err := DecodeTrace(buf.Bytes())
		if err != nil {
			t.Fatalf("encoder produced undecodable output for name=%q cat=%q: %v\n%s", name, cat, err, buf.Bytes())
		}
		if len(evs) != 1 {
			t.Fatalf("got %d events, want 1", len(evs))
		}

		// encoding/json's round trip of the raw string is the expected
		// normalization (invalid UTF-8 → U+FFFD).
		norm := func(s string) string {
			data, err := json.Marshal(s)
			if err != nil {
				t.Fatalf("json.Marshal(%q): %v", s, err)
			}
			var out string
			if err := json.Unmarshal(data, &out); err != nil {
				t.Fatalf("json.Unmarshal(%s): %v", data, err)
			}
			return out
		}
		if evs[0].Name != norm(name) {
			t.Errorf("name round-trip: got %q, want %q (raw %q)", evs[0].Name, norm(name), name)
		}
		if evs[0].Cat != norm(cat) {
			t.Errorf("cat round-trip: got %q, want %q", evs[0].Cat, norm(cat))
		}
		if evs[0].PID != int64(pid) || evs[0].TID != int64(tid) {
			t.Errorf("pid/tid: got %d/%d, want %d/%d", evs[0].PID, evs[0].TID, pid, tid)
		}
		wantDur := float64(durNs) / 1000
		if diff := evs[0].Dur - wantDur; diff > 0.001 || diff < -0.001 {
			t.Errorf("dur: got %vµs, want %vµs", evs[0].Dur, wantDur)
		}
		if step >= 0 && evs[0].Args["step"] != int64(step) {
			t.Errorf("step arg: got %v, want %d", evs[0].Args, step)
		}
		if group >= 0 && evs[0].Args["group"] != int64(group) {
			t.Errorf("group arg: got %v, want %d", evs[0].Args, group)
		}
	})
}

// FuzzTraceDecode feeds arbitrary bytes to the lenient trace parser:
// it must never panic, only return events or an error.
func FuzzTraceDecode(f *testing.F) {
	f.Add([]byte("[\n"))
	f.Add([]byte(`[{"name":"a","ph":"X","ts":1.5,"dur":2.5,"pid":0,"tid":1},` + "\n"))
	f.Add([]byte(`[{"name":"a"}]`))
	f.Add([]byte("]["))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := DecodeTrace(data)
		if err == nil {
			for _, ev := range evs {
				_ = ev.Name
			}
		}
	})
}
