// Package mem provides an internal-memory accountant for the EM-BSP
// simulation. The model grants each real processor M words of internal
// memory; the simulation engine must hold at most Θ(k·µ) words at any
// time (contexts and messages of the current group plus staging
// buffers). The accountant makes that claim checkable: every buffer
// the engine materializes is grabbed against the budget, and exceeding
// it is an error rather than a silent fidelity leak.
package mem

import "fmt"

// Accountant tracks internal memory usage in words against a limit.
type Accountant struct {
	limit int64
	used  int64
	high  int64
}

// NewAccountant returns an accountant with the given limit in words.
// A non-positive limit disables enforcement (unlimited memory); usage
// is still tracked.
func NewAccountant(limit int64) *Accountant {
	return &Accountant{limit: limit}
}

// Limit returns the configured limit (0 means unlimited).
func (a *Accountant) Limit() int64 { return a.limit }

// Used returns the currently held words.
func (a *Accountant) Used() int64 { return a.used }

// High returns the high-water mark of held words.
func (a *Accountant) High() int64 { return a.high }

// Grab reserves n words, failing if the limit would be exceeded.
func (a *Accountant) Grab(n int64) error {
	if n < 0 {
		return fmt.Errorf("mem: negative grab %d", n)
	}
	if a.limit > 0 && a.used+n > a.limit {
		return fmt.Errorf("mem: internal memory exceeded: used %d + grab %d > limit %d words", a.used, n, a.limit)
	}
	a.used += n
	if a.used > a.high {
		a.high = a.used
	}
	return nil
}

// Release returns n words to the budget. Releasing more than is held
// panics: that is an engine accounting bug, not a runtime condition.
func (a *Accountant) Release(n int64) {
	if n < 0 || n > a.used {
		panic(fmt.Sprintf("mem: release %d with %d held", n, a.used))
	}
	a.used -= n
}

// AdoptHigh raises the high-water mark to at least h. The EM engines
// journal the mark at every barrier commit and adopt it on resume, so
// a resumed run reports the same MemHigh as an uninterrupted one.
func (a *Accountant) AdoptHigh(h int64) {
	if h > a.high {
		a.high = h
	}
}

// Mark returns the current usage, for a later Rewind.
func (a *Accountant) Mark() int64 { return a.used }

// Rewind resets usage to a previous Mark. The EM engines use it when a
// fault aborts a superstep attempt partway: buffers grabbed by the
// aborted attempt are dropped wholesale rather than released one by
// one along the unwound error path.
func (a *Accountant) Rewind(used int64) {
	if used < 0 || used > a.used {
		panic(fmt.Sprintf("mem: rewind to %d with %d held", used, a.used))
	}
	a.used = used
}
