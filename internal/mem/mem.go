// Package mem provides an internal-memory accountant for the EM-BSP
// simulation. The model grants each real processor M words of internal
// memory; the simulation engine must hold at most Θ(k·µ) words at any
// time (contexts and messages of the current group plus staging
// buffers). The accountant makes that claim checkable: every buffer
// the engine materializes is grabbed against the budget, and exceeding
// it is an error rather than a silent fidelity leak.
//
// The job daemon reuses the same accountant one level up: per-tenant
// quotas and the daemon-wide run budget are Accountants whose Grab
// failure becomes an admission refusal (HTTP 429), and whose blocking
// ReserveCtx is how an admitted job waits for running jobs to release
// capacity — unblocking immediately if the waiting job is cancelled.
package mem

import (
	"context"
	"fmt"
	"sync"
)

// Accountant tracks internal memory usage in words against a limit.
// It is safe for concurrent use.
type Accountant struct {
	mu    sync.Mutex
	limit int64
	used  int64
	high  int64
	// waiters is the FIFO queue of blocked ReserveCtx calls. Capacity
	// freed by Release/Rewind is handed to the oldest waiter first
	// (its reservation is made on its behalf before its channel is
	// closed), so a large reservation cannot be starved by a stream of
	// small ones racing it to the lock.
	waiters []*waiter
}

// waiter is one blocked ReserveCtx: its reservation size and the
// channel closed when the reservation has been granted on its behalf.
type waiter struct {
	n       int64
	granted bool
	ready   chan struct{}
}

// NewAccountant returns an accountant with the given limit in words.
// A non-positive limit disables enforcement (unlimited memory); usage
// is still tracked.
func NewAccountant(limit int64) *Accountant {
	return &Accountant{limit: limit}
}

// Limit returns the configured limit (0 means unlimited).
func (a *Accountant) Limit() int64 { return a.limit }

// Used returns the currently held words.
func (a *Accountant) Used() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.used
}

// High returns the high-water mark of held words.
func (a *Accountant) High() int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.high
}

// Grab reserves n words, failing if the limit would be exceeded.
func (a *Accountant) Grab(n int64) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.grabLocked(n)
}

func (a *Accountant) grabLocked(n int64) error {
	if n < 0 {
		return fmt.Errorf("mem: negative grab %d", n)
	}
	if a.limit > 0 && a.used+n > a.limit {
		return fmt.Errorf("mem: internal memory exceeded: used %d + grab %d > limit %d words", a.used, n, a.limit)
	}
	a.used += n
	if a.used > a.high {
		a.high = a.used
	}
	return nil
}

// ReserveCtx reserves n words like Grab, but when the budget is
// currently exhausted it blocks until enough capacity is released —
// or until ctx is cancelled, in which case it returns ctx's error with
// nothing reserved. A reservation that could never fit (n exceeds the
// limit itself) fails immediately rather than stalling forever.
//
// Blocked reservations are served strictly oldest-first: freed
// capacity is handed to the head of the queue (even while younger,
// smaller reservations are waiting behind it), so a large reservation
// is guaranteed to proceed once enough capacity has drained, instead
// of losing every re-check race to smaller ones.
func (a *Accountant) ReserveCtx(ctx context.Context, n int64) error {
	if n < 0 {
		return fmt.Errorf("mem: negative reserve %d", n)
	}
	a.mu.Lock()
	if a.limit > 0 && n > a.limit {
		a.mu.Unlock()
		return fmt.Errorf("mem: reserve %d words can never fit the limit of %d", n, a.limit)
	}
	// Joining behind existing waiters even when n would fit right now
	// keeps the handoff fair: capacity freed for the queue head must
	// not be snatched by a latecomer.
	if len(a.waiters) == 0 && (a.limit <= 0 || a.used+n <= a.limit) {
		a.grabLocked(n) //nolint:errcheck // fits by the checks above
		a.mu.Unlock()
		return nil
	}
	w := &waiter{n: n, ready: make(chan struct{})}
	a.waiters = append(a.waiters, w)
	a.mu.Unlock()
	select {
	case <-ctx.Done():
		a.mu.Lock()
		if w.granted {
			// The grant raced the cancellation: the reservation was
			// already made on our behalf, so hand it straight back.
			a.used -= w.n
			a.wakeLocked()
			a.mu.Unlock()
			return ctx.Err()
		}
		for i, q := range a.waiters {
			if q == w {
				a.waiters = append(a.waiters[:i], a.waiters[i+1:]...)
				break
			}
		}
		// Removing a waiter can unblock the ones behind it.
		a.wakeLocked()
		a.mu.Unlock()
		return ctx.Err()
	case <-w.ready:
		return nil
	}
}

// Release returns n words to the budget, waking any ReserveCtx waiters.
// Releasing more than is held panics: that is an accounting bug, not a
// runtime condition.
func (a *Accountant) Release(n int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if n < 0 || n > a.used {
		panic(fmt.Sprintf("mem: release %d with %d held", n, a.used))
	}
	a.used -= n
	a.wakeLocked()
}

// AdoptHigh raises the high-water mark to at least h. The EM engines
// journal the mark at every barrier commit and adopt it on resume, so
// a resumed run reports the same MemHigh as an uninterrupted one.
func (a *Accountant) AdoptHigh(h int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if h > a.high {
		a.high = h
	}
}

// Mark returns the current usage, for a later Rewind.
func (a *Accountant) Mark() int64 { return a.Used() }

// Rewind resets usage to a previous Mark, waking any ReserveCtx
// waiters. The EM engines use it when a fault aborts a superstep
// attempt partway: buffers grabbed by the aborted attempt are dropped
// wholesale rather than released one by one along the unwound error
// path.
func (a *Accountant) Rewind(used int64) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if used < 0 || used > a.used {
		panic(fmt.Sprintf("mem: rewind to %d with %d held", used, a.used))
	}
	a.used = used
	a.wakeLocked()
}

// waiterCount reports the queued ReserveCtx waiters (test hook).
func (a *Accountant) waiterCount() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.waiters)
}

// wakeLocked grants reservations to queued ReserveCtx waiters,
// oldest first, for as long as the head fits the free capacity. The
// reservation is made here, on the waiter's behalf, before its
// channel is closed — a FIFO handoff, not a broadcast re-race.
func (a *Accountant) wakeLocked() {
	for len(a.waiters) > 0 {
		w := a.waiters[0]
		if a.limit > 0 && a.used+w.n > a.limit {
			return
		}
		a.grabLocked(w.n) //nolint:errcheck // fits by the check above
		w.granted = true
		close(w.ready)
		a.waiters = a.waiters[1:]
	}
}
