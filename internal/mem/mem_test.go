package mem

import "testing"

func TestGrabRelease(t *testing.T) {
	a := NewAccountant(100)
	if err := a.Grab(60); err != nil {
		t.Fatal(err)
	}
	if err := a.Grab(40); err != nil {
		t.Fatal(err)
	}
	if err := a.Grab(1); err == nil {
		t.Error("over-limit grab accepted")
	}
	if a.Used() != 100 || a.High() != 100 {
		t.Errorf("Used=%d High=%d, want 100/100", a.Used(), a.High())
	}
	a.Release(50)
	if err := a.Grab(30); err != nil {
		t.Errorf("grab after release failed: %v", err)
	}
	if a.Used() != 80 {
		t.Errorf("Used = %d, want 80", a.Used())
	}
	if a.High() != 100 {
		t.Errorf("High = %d, want 100", a.High())
	}
}

func TestUnlimited(t *testing.T) {
	a := NewAccountant(0)
	if err := a.Grab(1 << 40); err != nil {
		t.Errorf("unlimited accountant rejected grab: %v", err)
	}
	if a.High() != 1<<40 {
		t.Errorf("High = %d, want %d", a.High(), int64(1)<<40)
	}
}

func TestNegativeGrab(t *testing.T) {
	a := NewAccountant(10)
	if err := a.Grab(-1); err == nil {
		t.Error("negative grab accepted")
	}
}

func TestOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	a := NewAccountant(10)
	_ = a.Grab(5)
	a.Release(6)
}
