package mem

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestGrabRelease(t *testing.T) {
	a := NewAccountant(100)
	if err := a.Grab(60); err != nil {
		t.Fatal(err)
	}
	if err := a.Grab(40); err != nil {
		t.Fatal(err)
	}
	if err := a.Grab(1); err == nil {
		t.Error("over-limit grab accepted")
	}
	if a.Used() != 100 || a.High() != 100 {
		t.Errorf("Used=%d High=%d, want 100/100", a.Used(), a.High())
	}
	a.Release(50)
	if err := a.Grab(30); err != nil {
		t.Errorf("grab after release failed: %v", err)
	}
	if a.Used() != 80 {
		t.Errorf("Used = %d, want 80", a.Used())
	}
	if a.High() != 100 {
		t.Errorf("High = %d, want 100", a.High())
	}
}

func TestUnlimited(t *testing.T) {
	a := NewAccountant(0)
	if err := a.Grab(1 << 40); err != nil {
		t.Errorf("unlimited accountant rejected grab: %v", err)
	}
	if a.High() != 1<<40 {
		t.Errorf("High = %d, want %d", a.High(), int64(1)<<40)
	}
}

func TestNegativeGrab(t *testing.T) {
	a := NewAccountant(10)
	if err := a.Grab(-1); err == nil {
		t.Error("negative grab accepted")
	}
}

func TestOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	a := NewAccountant(10)
	_ = a.Grab(5)
	a.Release(6)
}

func TestReserveCtxImmediate(t *testing.T) {
	a := NewAccountant(100)
	if err := a.ReserveCtx(context.Background(), 100); err != nil {
		t.Fatalf("fitting reserve blocked or failed: %v", err)
	}
	if a.Used() != 100 {
		t.Errorf("Used = %d, want 100", a.Used())
	}
}

func TestReserveCtxNeverFits(t *testing.T) {
	a := NewAccountant(100)
	if err := a.ReserveCtx(context.Background(), 101); err == nil {
		t.Fatal("reserve larger than the limit did not fail immediately")
	}
	if a.Used() != 0 {
		t.Errorf("failed reserve left %d words held", a.Used())
	}
}

// TestReserveCtxCancellation is the satellite's regression test: a
// reservation stalled on an exhausted budget must unblock with the
// context's error when the waiting job is cancelled — previously the
// only blocking-reservation pattern (the store's write-behind stall)
// could wait forever with nothing to wake it.
func TestReserveCtxCancellation(t *testing.T) {
	a := NewAccountant(10)
	if err := a.Grab(10); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.ReserveCtx(ctx, 5) }()
	select {
	case err := <-done:
		t.Fatalf("reserve on an exhausted budget returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled reserve returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled reserve still blocked")
	}
	if a.Used() != 10 {
		t.Errorf("cancelled reserve changed usage to %d", a.Used())
	}
}

// TestReserveCtxNoStarvation is the FIFO handoff's regression test: a
// large reservation queued on an exhausted budget must be granted once
// enough capacity drains, even while a continuous stream of small
// reservations races it. Under the old broadcast wake, every freed
// chunk re-raced all waiters and a small latecomer could snatch it
// before the large reservation's re-check — which could starve it
// forever.
func TestReserveCtxNoStarvation(t *testing.T) {
	a := NewAccountant(100)
	if err := a.Grab(100); err != nil {
		t.Fatal(err)
	}
	big := make(chan error, 1)
	go func() { big <- a.ReserveCtx(context.Background(), 90) }()
	for a.waiterCount() == 0 {
		time.Sleep(time.Millisecond)
	}

	// A stream of small reservations arriving behind the blocked large
	// one: under FIFO they must queue (not jump it), so draining the
	// budget hands capacity to the head.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	smallDone := make(chan struct{})
	go func() {
		defer close(smallDone)
		for ctx.Err() == nil {
			if err := a.ReserveCtx(ctx, 1); err != nil {
				return
			}
			a.Release(1)
		}
	}()

	// Drain the initial hold in small steps — each Release wakes the
	// queue head; the large reservation must be granted exactly when
	// the last chunk frees, small-stream racing or not.
	for i := 0; i < 10; i++ {
		time.Sleep(time.Millisecond)
		a.Release(10)
	}
	select {
	case err := <-big:
		if err != nil {
			t.Fatalf("large reservation failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("large reservation starved by a stream of small ones")
	}
	cancel()
	<-smallDone
	a.Release(90)
	if a.Used() != 0 {
		t.Errorf("Used = %d after all releases, want 0", a.Used())
	}
}

// TestReserveCtxFIFOOrder: queued reservations are granted strictly
// oldest first, even when a younger one would fit sooner.
func TestReserveCtxFIFOOrder(t *testing.T) {
	a := NewAccountant(10)
	if err := a.Grab(10); err != nil {
		t.Fatal(err)
	}
	first := make(chan error, 1)
	go func() { first <- a.ReserveCtx(context.Background(), 8) }()
	for a.waiterCount() == 0 {
		time.Sleep(time.Millisecond)
	}
	second := make(chan error, 1)
	go func() { second <- a.ReserveCtx(context.Background(), 4) }()
	for a.waiterCount() < 2 {
		time.Sleep(time.Millisecond)
	}

	// Freeing 4 words fits the younger reservation but NOT the queue
	// head: nobody may be granted.
	a.Release(4)
	select {
	case <-first:
		t.Fatal("queue head granted without capacity")
	case <-second:
		t.Fatal("younger reservation jumped the queue")
	case <-time.After(20 * time.Millisecond):
	}

	// Freeing the rest grants the head — and only the head: its 8
	// words leave no room for the younger 4.
	a.Release(6)
	select {
	case err := <-first:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("queue head not granted after capacity freed")
	}
	select {
	case <-second:
		t.Fatal("younger reservation granted without capacity")
	case <-time.After(20 * time.Millisecond):
	}

	// The head's release hands its capacity down the queue.
	a.Release(8)
	select {
	case err := <-second:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("younger reservation not granted after the head released")
	}
	if a.Used() != 4 {
		t.Errorf("Used = %d, want 4", a.Used())
	}
}

// TestReserveCtxCancelWhileQueued: cancelling a queued waiter removes
// it and unblocks the ones behind it.
func TestReserveCtxCancelWhileQueued(t *testing.T) {
	a := NewAccountant(10)
	if err := a.Grab(6); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	head := make(chan error, 1)
	go func() { head <- a.ReserveCtx(ctx, 8) }() // can never proceed while 6 held
	for a.waiterCount() == 0 {
		time.Sleep(time.Millisecond)
	}
	tail := make(chan error, 1)
	go func() { tail <- a.ReserveCtx(context.Background(), 4) }() // fits now, but queued behind head
	for a.waiterCount() < 2 {
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-tail:
		t.Fatalf("younger reservation jumped the queue: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	if err := <-head; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled head returned %v, want context.Canceled", err)
	}
	select {
	case err := <-tail:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("removing the cancelled head did not unblock the queue")
	}
	if a.Used() != 10 {
		t.Errorf("Used = %d, want 10", a.Used())
	}
}

func TestReserveCtxUnblocksOnRelease(t *testing.T) {
	a := NewAccountant(10)
	if err := a.Grab(8); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.ReserveCtx(context.Background(), 5) }()
	select {
	case err := <-done:
		t.Fatalf("reserve returned before capacity freed: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	a.Release(8)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("reserve after release failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reserve still blocked after release freed capacity")
	}
	if a.Used() != 5 {
		t.Errorf("Used = %d, want 5", a.Used())
	}
}
