package mem

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestGrabRelease(t *testing.T) {
	a := NewAccountant(100)
	if err := a.Grab(60); err != nil {
		t.Fatal(err)
	}
	if err := a.Grab(40); err != nil {
		t.Fatal(err)
	}
	if err := a.Grab(1); err == nil {
		t.Error("over-limit grab accepted")
	}
	if a.Used() != 100 || a.High() != 100 {
		t.Errorf("Used=%d High=%d, want 100/100", a.Used(), a.High())
	}
	a.Release(50)
	if err := a.Grab(30); err != nil {
		t.Errorf("grab after release failed: %v", err)
	}
	if a.Used() != 80 {
		t.Errorf("Used = %d, want 80", a.Used())
	}
	if a.High() != 100 {
		t.Errorf("High = %d, want 100", a.High())
	}
}

func TestUnlimited(t *testing.T) {
	a := NewAccountant(0)
	if err := a.Grab(1 << 40); err != nil {
		t.Errorf("unlimited accountant rejected grab: %v", err)
	}
	if a.High() != 1<<40 {
		t.Errorf("High = %d, want %d", a.High(), int64(1)<<40)
	}
}

func TestNegativeGrab(t *testing.T) {
	a := NewAccountant(10)
	if err := a.Grab(-1); err == nil {
		t.Error("negative grab accepted")
	}
}

func TestOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("over-release did not panic")
		}
	}()
	a := NewAccountant(10)
	_ = a.Grab(5)
	a.Release(6)
}

func TestReserveCtxImmediate(t *testing.T) {
	a := NewAccountant(100)
	if err := a.ReserveCtx(context.Background(), 100); err != nil {
		t.Fatalf("fitting reserve blocked or failed: %v", err)
	}
	if a.Used() != 100 {
		t.Errorf("Used = %d, want 100", a.Used())
	}
}

func TestReserveCtxNeverFits(t *testing.T) {
	a := NewAccountant(100)
	if err := a.ReserveCtx(context.Background(), 101); err == nil {
		t.Fatal("reserve larger than the limit did not fail immediately")
	}
	if a.Used() != 0 {
		t.Errorf("failed reserve left %d words held", a.Used())
	}
}

// TestReserveCtxCancellation is the satellite's regression test: a
// reservation stalled on an exhausted budget must unblock with the
// context's error when the waiting job is cancelled — previously the
// only blocking-reservation pattern (the store's write-behind stall)
// could wait forever with nothing to wake it.
func TestReserveCtxCancellation(t *testing.T) {
	a := NewAccountant(10)
	if err := a.Grab(10); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.ReserveCtx(ctx, 5) }()
	select {
	case err := <-done:
		t.Fatalf("reserve on an exhausted budget returned early: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled reserve returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled reserve still blocked")
	}
	if a.Used() != 10 {
		t.Errorf("cancelled reserve changed usage to %d", a.Used())
	}
}

func TestReserveCtxUnblocksOnRelease(t *testing.T) {
	a := NewAccountant(10)
	if err := a.Grab(8); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- a.ReserveCtx(context.Background(), 5) }()
	select {
	case err := <-done:
		t.Fatalf("reserve returned before capacity freed: %v", err)
	case <-time.After(20 * time.Millisecond):
	}
	a.Release(8)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("reserve after release failed: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("reserve still blocked after release freed capacity")
	}
	if a.Used() != 5 {
		t.Errorf("Used = %d, want 5", a.Used())
	}
}
