package prng

import (
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(12345), New(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("seeds 1 and 2 collide on %d/100 outputs", same)
	}
}

func TestDeriveDistinct(t *testing.T) {
	seen := make(map[uint64]bool)
	for vp := uint64(0); vp < 64; vp++ {
		for step := uint64(0); step < 16; step++ {
			k := Derive(99, vp, step)
			if seen[k] {
				t.Fatalf("Derive collision at vp=%d step=%d", vp, step)
			}
			seen[k] = true
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	f := func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntnUniformity(t *testing.T) {
	r := New(42)
	const n, trials = 10, 100000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Intn(n)]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d has %d hits, want about %d", i, c, want)
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(3)
	f := func(n uint8) bool {
		m := int(n%64) + 1
		p := r.Perm(m)
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPermIntoMatchesPerm(t *testing.T) {
	a, b := New(5), New(5)
	p := a.Perm(33)
	q := make([]int, 33)
	b.PermInto(q)
	for i := range p {
		if p[i] != q[i] {
			t.Fatalf("Perm and PermInto disagree at %d: %d vs %d", i, p[i], q[i])
		}
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(11)
	const n, trials = 8, 80000
	counts := make([]int, n)
	for i := 0; i < trials; i++ {
		counts[r.Perm(n)[0]]++
	}
	want := trials / n
	for i, c := range counts {
		if c < want*85/100 || c > want*115/100 {
			t.Errorf("P[perm[0]=%d] off: %d hits, want about %d", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}
