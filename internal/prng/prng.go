// Package prng provides small, fast, deterministic pseudo-random
// number generators for the simulation engine.
//
// Determinism matters here: the simulation result of a randomized
// BSP*-to-EM simulation run (Algorithms 1–3 of the paper) must be
// reproducible across the in-memory reference runner, the sequential
// EM engine and the multiprocessor EM engine, regardless of goroutine
// scheduling. Every random stream is therefore keyed explicitly by
// (seed, consumer identity) via Derive, never by shared global state.
//
// The generator is xoshiro256**, seeded through SplitMix64, following
// Blackman & Vigna. It is not cryptographic.
package prng

import "math/bits"

// SplitMix64 advances the SplitMix64 state and returns the next value.
// It is used for seeding and for key derivation.
func SplitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Derive deterministically combines a seed with a sequence of
// identifiers (virtual processor id, superstep index, ...) into a new
// seed. Distinct identifier tuples yield statistically independent
// streams.
func Derive(seed uint64, ids ...uint64) uint64 {
	s := seed
	out := SplitMix64(&s)
	for _, id := range ids {
		s ^= id
		out = SplitMix64(&s) ^ bits.RotateLeft64(out, 17)
	}
	return out
}

// Rand is a xoshiro256** generator.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64.
func New(seed uint64) *Rand {
	var r Rand
	r.Seed(seed)
	return &r
}

// Seed resets the generator state from seed.
func (r *Rand) Seed(seed uint64) {
	s := seed
	for i := range r.s {
		r.s[i] = SplitMix64(&s)
	}
}

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("prng: Intn with non-positive n")
	}
	// Lemire's multiply-shift rejection method.
	un := uint64(n)
	v := r.Uint64()
	hi, lo := bits.Mul64(v, un)
	if lo < un {
		thresh := -un % un
		for lo < thresh {
			v = r.Uint64()
			hi, lo = bits.Mul64(v, un)
		}
	}
	return int(hi)
}

// Int63 returns a uniform non-negative int64.
func (r *Rand) Int63() int64 { return int64(r.Uint64() >> 1) }

// State returns the generator's internal state. The engines store it
// in superstep checkpoint manifests so a rolled-back superstep can be
// replayed with identical draws.
func (r *Rand) State() [4]uint64 { return r.s }

// SetState restores a state previously captured by State.
func (r *Rand) SetState(s [4]uint64) { r.s = s }

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns a uniform random boolean.
func (r *Rand) Bool() bool { return r.Uint64()&1 == 1 }

// Perm returns a uniform random permutation of [0, n) as a new slice.
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}

// PermInto fills p with a uniform random permutation of [0, len(p)),
// avoiding allocation.
func (r *Rand) PermInto(p []int) {
	for i := range p {
		p[i] = i
	}
	r.Shuffle(len(p), func(i, j int) { p[i], p[j] = p[j], p[i] })
}

// Shuffle performs a Fisher–Yates shuffle of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
