package cgmgraph

import (
	"fmt"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// ExprTree evaluates an arithmetic expression tree over ℤ/2⁶⁴ (the
// Table 1 "Tree contraction / Expression tree evaluation" rows) by
// parallel tree contraction: the classic rake operation with linear-
// form labels. Every tree edge carries a function f(x) = a·x + b; a
// leaf c with constant k = f_c(val_c) rakes its parent p away by
// composing p's edge function with (k OP ·) into the sibling's edge —
// both + and × keep the labels linear over ℤ/2⁶⁴.
//
// Rakes proceed in rounds over the left-to-right leaf numbering
// (obtained from an embedded Euler tour): first the odd-numbered
// leaves that are "left" children, then the odd-numbered "right"
// ones — the standard schedule in which no two raked parents coincide
// or are adjacent — after which leaf numbers halve. Leaves halve per
// round, so O(log n) rounds; when few nodes remain they are gathered
// to VP 0 and finished sequentially, as in the list-ranking machine.
//
// Operators are commutative (+, ×), so the Euler tour's
// neighbour-sorted embedding is a valid left-to-right order.
type ExprTree struct {
	v      int
	n      int
	parent []int
	kind   []uint8 // OpLeaf, OpAdd, OpMul
	value  []uint64
	euler  *EulerTour
}

// Expression node kinds.
const (
	OpLeaf uint8 = iota
	OpAdd
	OpMul
)

// NewExprTree returns the program for an expression tree with n nodes
// rooted at node 0: parent[i] is node i's parent (-1 for the root),
// kind[i] its operator, value[i] its constant (leaves only). Internal
// nodes must have exactly two children.
func NewExprTree(parent []int, kind []uint8, value []uint64, v int) (*ExprTree, error) {
	n := len(parent)
	if v <= 0 {
		return nil, fmt.Errorf("cgmgraph: v = %d, want > 0", v)
	}
	if len(kind) != n || len(value) != n {
		return nil, fmt.Errorf("cgmgraph: parent/kind/value lengths differ")
	}
	if n == 0 || parent[0] != -1 {
		return nil, fmt.Errorf("cgmgraph: node 0 must be the root (parent -1)")
	}
	childCount := make([]int, n)
	edges := make([][2]int, 0, n-1)
	for i := 1; i < n; i++ {
		if parent[i] < 0 || parent[i] >= n || parent[i] == i {
			return nil, fmt.Errorf("cgmgraph: parent[%d] = %d invalid", i, parent[i])
		}
		childCount[parent[i]]++
		edges = append(edges, [2]int{parent[i], i})
	}
	for i := 0; i < n; i++ {
		switch kind[i] {
		case OpLeaf:
			if childCount[i] != 0 {
				return nil, fmt.Errorf("cgmgraph: leaf %d has %d children", i, childCount[i])
			}
		case OpAdd, OpMul:
			if childCount[i] != 2 {
				return nil, fmt.Errorf("cgmgraph: operator node %d has %d children, want 2", i, childCount[i])
			}
		default:
			return nil, fmt.Errorf("cgmgraph: node %d has unknown kind %d", i, kind[i])
		}
	}
	euler, err := NewEulerTour(n, edges, v)
	if err != nil {
		return nil, err
	}
	return &ExprTree{v: v, n: n, parent: parent, kind: kind, value: value, euler: euler}, nil
}

func (p *ExprTree) NumVPs() int { return p.v }

func (p *ExprTree) maxOwn() int { return cgm.MaxPart(p.n, p.v) }

func (p *ExprTree) MaxContextWords() int {
	s := cgm.Sorter{W: 2}
	// Euler state, per-node tables, leaf-number sorter and scan,
	// result, phase words.
	return 32 + p.euler.MaxContextWords() + 12*words.SizeUints(p.maxOwn()) +
		s.SaveSize(3*p.maxOwn()+p.v, p.v) + cgm.ScanSaveWords
}

func (p *ExprTree) MaxCommWords() int {
	c := p.euler.MaxCommWords()
	// Children collection / sides / rakes / composes: O(1) words per
	// node per superstep; a star parent can receive O(n).
	if t := 8*p.n + 4*p.v + 64; t > c {
		c = t
	}
	thr := rankerThreshold(p.n, p.v)
	if g := 12*thr + 4*p.v + 64; g > c {
		c = g
	}
	return c
}

// ExprTree phases.
const (
	etEuler   = iota // embedded Euler tour (first occurrences)
	etKids           // children report to parents
	etSides          // parents assign child sides; leaves enter sorter
	etLeafNum        // leaf-number sorter (4) + scan (3) + absorb
	etRakeA          // VP 0 reads counts + broadcasts verdict; odd left leaves rake
	etRakeB          // parents process rakes; verdict consumed
	etRakeC          // apply updates; odd right leaves rake
	etRakeD          // parents process rakes
	etRakeE          // apply updates; renumber; counts to VP 0 (or gather)
	etSolve          // VP 0 evaluates the gathered remnant; broadcasts done
	etDone           // consume done; halt
)

// ExprTree message tags.
const (
	etTagKid = iota
	etTagSide
	etTagLeafNum
	etTagRake
	etTagCompose
	etTagReplace
	etTagCount
	etTagCmd
	etTagNode
)

type exprVP struct {
	p     *ExprTree
	euler *eulerVP
	phase uint64

	sorter cgm.Sorter // leaf numbering: (first, id) records
	scan   cgm.Scan
	numSub uint64 // sub-phase within etLeafNum

	// Per owned node state (flattened over the owned vertex block).
	alive   []uint64
	par     []uint64 // current parent (changes as nodes are bypassed)
	side    []uint64 // 0 left, 1 right, none at the (current) root
	childL  []uint64
	childR  []uint64
	leafNum []uint64 // 1-based, none for internal nodes
	fa, fb  []uint64 // edge function f(x) = fa·x + fb
	val     []uint64 // leaf constants

	gather  bool   // VP 0 signalled the endgame
	result  uint64 // valid at VP 0 once done
	haveRes uint64
}

func (p *ExprTree) NewVP(id int) bsp.VP {
	return &exprVP{p: p, euler: p.euler.NewVP(id).(*eulerVP)}
}

func (vp *exprVP) vertRange(env *bsp.Env) (int, int) {
	return cgm.Dist(vp.p.n, env.NumVPs(), env.ID())
}

// composeOp returns g = f_p ∘ (k OP ·) as a linear form.
func composeOp(fa, fb, k uint64, kind uint8) (ga, gb uint64) {
	if kind == OpAdd { // f_p(y + k) = fa·y + (fa·k + fb)
		return fa, fa*k + fb
	}
	// OpMul: f_p(k·y) = (fa·k)·y + fb
	return fa * k, fb
}

func (vp *exprVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	v := env.NumVPs()
	vlo, vhi := vp.vertRange(env)
	own := vhi - vlo
	switch vp.phase {
	case etEuler:
		done, err := vp.euler.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		// Initialize node state and report each child to its parent
		// with its first occurrence (for side assignment).
		vp.alive = make([]uint64, own)
		vp.par = make([]uint64, own)
		vp.side = make([]uint64, own)
		vp.childL = make([]uint64, own)
		vp.childR = make([]uint64, own)
		vp.leafNum = make([]uint64, own)
		vp.fa = make([]uint64, own)
		vp.fb = make([]uint64, own)
		vp.val = make([]uint64, own)
		parts := make([][]uint64, v)
		for i := 0; i < own; i++ {
			id := vlo + i
			vp.alive[i] = 1
			vp.side[i] = none
			vp.par[i] = none
			vp.childL[i], vp.childR[i] = none, none
			vp.leafNum[i] = none
			vp.fa[i], vp.fb[i] = 1, 0
			vp.val[i] = vp.p.value[id]
			if par := vp.p.parent[id]; par >= 0 {
				vp.par[i] = uint64(par)
				d := cgm.Owner(vp.p.n, v, par)
				parts[d] = append(parts[d], etTagKid, uint64(par), uint64(id), vp.euler.first[i])
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(own))
		vp.phase = etKids
		return false, nil

	case etKids:
		// Parents order their two children by first occurrence and
		// tell each child its side.
		type kid struct{ id, first uint64 }
		kids := make(map[int][]kid)
		for _, m := range in {
			p := m.Payload
			for i := 0; i+4 <= len(p); i += 4 {
				if p[i] != etTagKid {
					return false, fmt.Errorf("cgmgraph: expr unexpected tag %d in kids", p[i])
				}
				kids[int(p[i+1])] = append(kids[int(p[i+1])], kid{p[i+2], p[i+3]})
			}
		}
		parts := make([][]uint64, v)
		for par := vlo; par < vhi; par++ {
			ks := kids[par]
			if len(ks) == 0 {
				continue
			}
			if len(ks) != 2 {
				return false, fmt.Errorf("cgmgraph: node %d received %d child reports", par, len(ks))
			}
			if ks[0].first > ks[1].first {
				ks[0], ks[1] = ks[1], ks[0]
			}
			vp.childL[par-vlo], vp.childR[par-vlo] = ks[0].id, ks[1].id
			for s, k := range ks {
				d := cgm.Owner(vp.p.n, v, int(k.id))
				parts[d] = append(parts[d], etTagSide, k.id, uint64(s))
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		vp.phase = etSides
		return false, nil

	case etSides:
		for _, m := range in {
			p := m.Payload
			for i := 0; i+3 <= len(p); i += 3 {
				if p[i] != etTagSide {
					return false, fmt.Errorf("cgmgraph: expr unexpected tag %d in sides", p[i])
				}
				vp.side[int(p[i+1])-vlo] = p[i+2]
			}
		}
		// Enter the leaf-numbering sorter with (first, id) records.
		recs := make([]uint64, 0, 2*own)
		for i := 0; i < own; i++ {
			if vp.p.kind[vlo+i] == OpLeaf {
				recs = append(recs, vp.euler.first[i], uint64(vlo+i))
			}
		}
		vp.sorter = cgm.Sorter{W: 2, Data: recs}
		vp.numSub = 0
		vp.phase = etLeafNum
		return vp.Step(env, nil)

	case etLeafNum:
		switch vp.numSub {
		case 0: // sorter supersteps
			done, err := vp.sorter.Step(env, in)
			if err != nil {
				return false, err
			}
			if done {
				vp.scan = cgm.Scan{Value: uint64(len(vp.sorter.Data) / 2)}
				vp.numSub = 1
			}
			return false, nil
		case 1: // scan supersteps
			done, err := vp.scan.Step(env, in)
			if err != nil {
				return false, err
			}
			if !done {
				return false, nil
			}
			// Route 1-based leaf numbers home.
			parts := make([][]uint64, v)
			for i := 0; i*2 < len(vp.sorter.Data); i++ {
				id := vp.sorter.Data[i*2+1]
				num := vp.scan.Prefix + uint64(i) + 1
				d := cgm.Owner(vp.p.n, v, int(id))
				parts[d] = append(parts[d], etTagLeafNum, id, num)
			}
			for d, part := range parts {
				if len(part) > 0 {
					env.Send(d, part)
				}
			}
			vp.sorter.Data = nil
			vp.numSub = 2
			return false, nil
		default: // absorb numbers, start the first rake round
			for _, m := range in {
				p := m.Payload
				for i := 0; i+3 <= len(p); i += 3 {
					if p[i] != etTagLeafNum {
						return false, fmt.Errorf("cgmgraph: expr unexpected tag %d in leaf numbering", p[i])
					}
					vp.leafNum[int(p[i+1])-vlo] = p[i+2]
				}
			}
			vp.phase = etRakeA
			return vp.Step(env, nil)
		}

	case etRakeA:
		// VP 0: the previous round's counts arrive here; broadcast
		// the verdict (consumed at etRakeB).
		if env.ID() == 0 {
			var counts uint64
			saw := false
			for _, m := range in {
				if m.Payload[0] == etTagCount {
					counts += m.Payload[1]
					saw = true
				}
			}
			if saw {
				verdict := uint64(0)
				if counts <= uint64(rankerThreshold(vp.p.n, v)) {
					verdict = 1
				}
				for d := 0; d < v; d++ {
					env.Send(d, []uint64{etTagCmd, verdict})
				}
			}
		}
		if err := vp.sendRakes(env, 0, vlo, own); err != nil {
			return false, err
		}
		vp.phase = etRakeB
		return false, nil

	case etRakeB, etRakeD:
		if err := vp.processRakes(env, in, vlo); err != nil {
			return false, err
		}
		vp.phase++
		return false, nil

	case etRakeC:
		if err := vp.applyUpdates(env, in, vlo); err != nil {
			return false, err
		}
		if err := vp.sendRakes(env, 1, vlo, own); err != nil {
			return false, err
		}
		vp.phase = etRakeD
		return false, nil

	case etRakeE:
		if err := vp.applyUpdates(env, in, vlo); err != nil {
			return false, err
		}
		if vp.gather {
			// Endgame: ship alive nodes to VP 0.
			var payload []uint64
			for i := 0; i < own; i++ {
				if vp.alive[i] == 1 {
					payload = append(payload, etTagNode, uint64(vlo+i), vp.par[i],
						vp.fa[i], vp.fb[i], vp.childL[i], vp.childR[i])
				}
			}
			if len(payload) > 0 {
				env.Send(0, payload)
			}
			vp.phase = etSolve
			return false, nil
		}
		var count uint64
		for i := 0; i < own; i++ {
			if vp.alive[i] == 1 {
				count++
				if vp.leafNum[i] != none {
					vp.leafNum[i] = (vp.leafNum[i] + 1) / 2
				}
			}
		}
		env.Send(0, []uint64{etTagCount, count})
		env.Charge(int64(own))
		vp.phase = etRakeA
		return false, nil

	case etSolve:
		if env.ID() == 0 {
			if err := vp.solve(in); err != nil {
				return false, err
			}
			for d := 0; d < v; d++ {
				env.Send(d, []uint64{etTagCmd, 2})
			}
		}
		vp.phase = etDone
		return false, nil

	case etDone:
		for _, m := range in {
			if m.Payload[0] != etTagCmd || m.Payload[1] != 2 {
				return false, fmt.Errorf("cgmgraph: expr unexpected message at completion")
			}
		}
		return true, nil

	default:
		return false, fmt.Errorf("cgmgraph: expr VP stepped after completion (phase %d)", vp.phase)
	}
}

// sendRakes lets every odd-numbered alive leaf on the given side rake
// its parent.
func (vp *exprVP) sendRakes(env *bsp.Env, wantSide uint64, vlo, own int) error {
	v := env.NumVPs()
	parts := make([][]uint64, v)
	for i := 0; i < own; i++ {
		id := vlo + i
		if vp.alive[i] == 0 || vp.p.kind[id] != OpLeaf {
			continue
		}
		if vp.par[i] == none {
			continue // the final survivor
		}
		if vp.leafNum[i]%2 == 1 && vp.side[i] == wantSide {
			k := vp.fa[i]*vp.val[i] + vp.fb[i]
			d := cgm.Owner(vp.p.n, v, int(vp.par[i]))
			parts[d] = append(parts[d], etTagRake, vp.par[i], uint64(id), k)
			vp.alive[i] = 0
		}
	}
	for d, part := range parts {
		if len(part) > 0 {
			env.Send(d, part)
		}
	}
	env.Charge(int64(own))
	return nil
}

// processRakes bypasses every raked parent: the sibling inherits the
// composed edge function and the grandparent replaces its child
// pointer. The verdict broadcast from VP 0 (etTagCmd) is also
// consumed here.
func (vp *exprVP) processRakes(env *bsp.Env, in []bsp.Message, vlo int) error {
	v := env.NumVPs()
	parts := make([][]uint64, v)
	for _, m := range in {
		p := m.Payload
		i := 0
		for i < len(p) {
			switch p[i] {
			case etTagCmd:
				if p[i+1] == 1 {
					vp.gather = true
				}
				i += 2
			case etTagRake:
				par := int(p[i+1])
				child := p[i+2]
				k := p[i+3]
				j := par - vlo
				if vp.alive[j] == 0 {
					return fmt.Errorf("cgmgraph: rake into dead node %d", par)
				}
				var sib uint64
				switch child {
				case vp.childL[j]:
					sib = vp.childR[j]
				case vp.childR[j]:
					sib = vp.childL[j]
				default:
					return fmt.Errorf("cgmgraph: rake from non-child %d of %d", child, par)
				}
				ga, gb := composeOp(vp.fa[j], vp.fb[j], k, vp.p.kind[par])
				ds := cgm.Owner(vp.p.n, v, int(sib))
				parts[ds] = append(parts[ds], etTagCompose, sib, ga, gb, vp.par[j], vp.side[j])
				if vp.par[j] != none {
					dg := cgm.Owner(vp.p.n, v, int(vp.par[j]))
					parts[dg] = append(parts[dg], etTagReplace, vp.par[j], uint64(par), sib)
				}
				vp.alive[j] = 0
				i += 4
			default:
				return fmt.Errorf("cgmgraph: expr unexpected tag %d in rake processing", p[i])
			}
		}
	}
	for d, part := range parts {
		if len(part) > 0 {
			env.Send(d, part)
		}
	}
	return nil
}

// applyUpdates processes compose/replace messages (and any verdict).
func (vp *exprVP) applyUpdates(env *bsp.Env, in []bsp.Message, vlo int) error {
	for _, m := range in {
		p := m.Payload
		i := 0
		for i < len(p) {
			switch p[i] {
			case etTagCmd:
				if p[i+1] == 1 {
					vp.gather = true
				}
				i += 2
			case etTagCompose:
				j := int(p[i+1]) - vlo
				ga, gb := p[i+2], p[i+3]
				vp.fa[j], vp.fb[j] = ga*vp.fa[j], ga*vp.fb[j]+gb
				vp.par[j] = p[i+4]
				vp.side[j] = p[i+5]
				i += 6
			case etTagReplace:
				j := int(p[i+1]) - vlo
				switch p[i+2] {
				case vp.childL[j]:
					vp.childL[j] = p[i+3]
				case vp.childR[j]:
					vp.childR[j] = p[i+3]
				default:
					return fmt.Errorf("cgmgraph: replace of non-child %d at %d", p[i+2], p[i+1])
				}
				i += 4
			default:
				return fmt.Errorf("cgmgraph: expr unexpected tag %d in update", p[i])
			}
		}
	}
	return nil
}

// solve evaluates the gathered remnant at VP 0.
func (vp *exprVP) solve(in []bsp.Message) error {
	type node struct {
		par, fa, fb, cl, cr uint64
	}
	nodes := make(map[uint64]node)
	for _, m := range in {
		p := m.Payload
		for i := 0; i+7 <= len(p); i += 7 {
			if p[i] != etTagNode {
				return fmt.Errorf("cgmgraph: expr unexpected tag %d in solve", p[i])
			}
			nodes[p[i+1]] = node{p[i+2], p[i+3], p[i+4], p[i+5], p[i+6]}
		}
	}
	if len(nodes) == 0 {
		return fmt.Errorf("cgmgraph: nothing gathered at VP 0")
	}
	var contributed func(id uint64, depth int) (uint64, error)
	contributed = func(id uint64, depth int) (uint64, error) {
		if depth > len(nodes) {
			return 0, fmt.Errorf("cgmgraph: cycle in gathered remnant")
		}
		nd, ok := nodes[id]
		if !ok {
			return 0, fmt.Errorf("cgmgraph: gathered remnant misses node %d", id)
		}
		var raw uint64
		if vp.p.kind[id] == OpLeaf {
			raw = vp.p.value[id]
		} else {
			a, err := contributed(nd.cl, depth+1)
			if err != nil {
				return 0, err
			}
			b, err := contributed(nd.cr, depth+1)
			if err != nil {
				return 0, err
			}
			if vp.p.kind[id] == OpAdd {
				raw = a + b
			} else {
				raw = a * b
			}
		}
		return nd.fa*raw + nd.fb, nil
	}
	var root uint64 = none
	for id, nd := range nodes {
		if nd.par == none {
			if root != none {
				return fmt.Errorf("cgmgraph: gathered remnant has two roots (%d, %d)", root, id)
			}
			root = id
		}
	}
	if root == none {
		return fmt.Errorf("cgmgraph: gathered remnant has no root")
	}
	res, err := contributed(root, 0)
	if err != nil {
		return err
	}
	vp.result = res
	vp.haveRes = 1
	return nil
}

func (vp *exprVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	enc.PutUint(vp.numSub)
	enc.PutBool(vp.gather)
	enc.PutUint(vp.result)
	enc.PutUint(vp.haveRes)
	vp.euler.Save(enc)
	vp.sorter.Save(enc)
	vp.scan.Save(enc)
	enc.PutUints(vp.alive)
	enc.PutUints(vp.par)
	enc.PutUints(vp.side)
	enc.PutUints(vp.childL)
	enc.PutUints(vp.childR)
	enc.PutUints(vp.leafNum)
	enc.PutUints(vp.fa)
	enc.PutUints(vp.fb)
	enc.PutUints(vp.val)
}

func (vp *exprVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	vp.numSub = dec.Uint()
	vp.gather = dec.Bool()
	vp.result = dec.Uint()
	vp.haveRes = dec.Uint()
	vp.euler.Load(dec)
	vp.sorter.W = 2
	vp.sorter.Load(dec)
	vp.scan.Load(dec)
	vp.alive = dec.Uints()
	vp.par = dec.Uints()
	vp.side = dec.Uints()
	vp.childL = dec.Uints()
	vp.childR = dec.Uints()
	vp.leafNum = dec.Uints()
	vp.fa = dec.Uints()
	vp.fb = dec.Uints()
	vp.val = dec.Uints()
}

// Output returns the expression value (held by VP 0).
func (p *ExprTree) Output(vps []bsp.VP) uint64 {
	return vps[0].(*exprVP).result
}
