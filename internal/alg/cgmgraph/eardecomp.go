package cgmgraph

import (
	"fmt"
	"sort"
)

// EarDecomposition computes an ear decomposition of a biconnected
// graph (the Table 1 "Ear and open ear decomposition" row) in the
// Maon–Schieber–Vishkin style, composed from the package's programs:
//
//  1. CC finds a spanning tree and EulerTour roots it (depths, an
//     ancestor-consistent tour numbering);
//  2. the LCA program labels every non-tree edge e with
//     (depth(lca(e)), edge id) — a total order in which shallower
//     lcas come first;
//  3. TourAgg assigns every tree edge (p(x), x) the minimum label
//     over the non-tree edges incident to x's subtree: for a
//     biconnected graph that minimum is a covering edge (its lca lies
//     strictly above x), so tree edges on a non-tree edge's
//     tree-path share its label exactly when it is their smallest
//     cover.
//
// The ears are the label classes: ear i consists of one non-tree edge
// and the tree edges labeled by it; ear 0 (the smallest label) is a
// cycle and later ears are paths with endpoints on earlier ears.
// Each phase runs through the supplied Runner; the O(n+m) glue
// between phases is in-core (same documented deviation as
// Biconnectivity).
//
// The result assigns every edge its 0-based ear index in ear order.
func EarDecomposition(n int, edges [][2]int, v int, run Runner) ([]int, error) {
	if n < 3 || len(edges) < n {
		return nil, fmt.Errorf("cgmgraph: ear decomposition needs a biconnected graph (n >= 3, m >= n)")
	}

	// Phase 1: spanning tree.
	ccProg, err := NewCC(n, edges, v)
	if err != nil {
		return nil, err
	}
	ccVPs, err := run(ccProg)
	if err != nil {
		return nil, fmt.Errorf("cgmgraph: ear decomposition spanning tree: %w", err)
	}
	labels := ccProg.Output(ccVPs)
	for _, l := range labels {
		if l != labels[0] {
			return nil, fmt.Errorf("cgmgraph: ear decomposition requires a connected graph")
		}
	}
	forest := ccProg.Forest(ccVPs)
	isTree := make([]bool, len(edges))
	treeEdges := make([][2]int, 0, n-1)
	for _, ei := range forest {
		isTree[ei] = true
		treeEdges = append(treeEdges, edges[ei])
	}
	var nontree []int
	for ei := range edges {
		if !isTree[ei] {
			nontree = append(nontree, ei)
		}
	}

	// Phase 2: root the tree.
	euProg, err := NewEulerTour(n, treeEdges, v)
	if err != nil {
		return nil, err
	}
	euVPs, err := run(euProg)
	if err != nil {
		return nil, fmt.Errorf("cgmgraph: ear decomposition rooting: %w", err)
	}
	info := euProg.Output(euVPs)

	// Phase 3: LCAs of all non-tree edges.
	queries := make([][2]int, len(nontree))
	for i, ei := range nontree {
		queries[i] = edges[ei]
	}
	lcaProg, err := NewLCA(n, treeEdges, queries, v)
	if err != nil {
		return nil, err
	}
	lcaVPs, err := run(lcaProg)
	if err != nil {
		return nil, fmt.Errorf("cgmgraph: ear decomposition lcas: %w", err)
	}
	lcas := lcaProg.Output(lcaVPs)

	// Glue: per-edge labels (depth(lca) << 32 | edge id) and the
	// per-vertex minimum over incident non-tree edges.
	const noLabel = ^uint64(0)
	label := make([]uint64, len(edges))
	g := make([]uint64, n)
	for i := range g {
		g[i] = noLabel
	}
	for i, ei := range nontree {
		label[ei] = uint64(info.Depth[lcas[i]])<<32 | uint64(ei)
		for _, x := range edges[ei] {
			if label[ei] < g[x] {
				g[x] = label[ei]
			}
		}
	}

	// Phase 4: subtree minima of g.
	aggProg, err := NewTourAgg(n, treeEdges, g, v)
	if err != nil {
		return nil, err
	}
	aggVPs, err := run(aggProg)
	if err != nil {
		return nil, fmt.Errorf("cgmgraph: ear decomposition subtree minima: %w", err)
	}
	mins, _ := aggProg.Output(aggVPs)

	// Tree edge (p(x), x) takes x's subtree minimum; a biconnected
	// graph covers every tree edge, so the minimum's lca lies strictly
	// above x.
	for ei, e := range edges {
		if !isTree[ei] {
			continue
		}
		x := e[0]
		if info.Parent[x] == e[1] {
			// e[1] is the parent: x is the child.
		} else {
			x = e[1]
		}
		s := mins[x]
		if s == noLabel || int(s>>32) >= info.Depth[x] {
			return nil, fmt.Errorf("cgmgraph: tree edge to vertex %d is uncovered: graph is not biconnected", x)
		}
		label[ei] = s
	}

	// Canonicalize labels to 0-based ear indices in ascending label
	// order.
	distinct := make([]uint64, 0, len(nontree))
	seen := make(map[uint64]bool)
	for _, l := range label {
		if !seen[l] {
			seen[l] = true
			distinct = append(distinct, l)
		}
	}
	sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
	rank := make(map[uint64]int, len(distinct))
	for i, l := range distinct {
		rank[l] = i
	}
	out := make([]int, len(edges))
	for ei, l := range label {
		out[ei] = rank[l]
	}
	return out, nil
}
