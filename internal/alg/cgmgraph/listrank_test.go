package cgmgraph_test

import (
	"testing"
	"testing/quick"

	"embsp/internal/alg/algtest"
	"embsp/internal/alg/cgmgraph"
	"embsp/internal/bsp"
	"embsp/internal/prng"
)

// randomChains builds a successor array of nLists random disjoint
// chains covering n nodes.
func randomChains(r *prng.Rand, n, nLists int) []int {
	perm := r.Perm(n)
	succ := make([]int, n)
	for i := range succ {
		succ[i] = -1
	}
	if n == 0 {
		return succ
	}
	if nLists < 1 {
		nLists = 1
	}
	// Split the permutation into nLists chains at random cut points.
	cuts := map[int]bool{0: true}
	for len(cuts) < nLists && len(cuts) < n {
		cuts[r.Intn(n)] = true
	}
	for i := 0; i+1 < n; i++ {
		if !cuts[i+1] {
			succ[perm[i]] = perm[i+1]
		}
	}
	return succ
}

// seqRank is the sequential reference.
func seqRank(succ []int, weight []uint64) []uint64 {
	n := len(succ)
	rank := make([]uint64, n)
	done := make([]bool, n)
	var solve func(i int) uint64
	solve = func(i int) uint64 {
		if done[i] {
			return rank[i]
		}
		done[i] = true
		w := uint64(1)
		if weight != nil {
			w = weight[i]
		}
		if succ[i] >= 0 {
			rank[i] = w + solve(succ[i])
		}
		return rank[i]
	}
	for i := range succ {
		solve(i)
	}
	return rank
}

func TestListRankSingleChain(t *testing.T) {
	for _, n := range []int{0, 1, 2, 10, 100, 333} {
		for _, v := range []int{1, 2, 4, 7} {
			r := prng.New(uint64(n*100 + v))
			succ := randomChains(r, n, 1)
			p, err := cgmgraph.NewListRank(succ, nil, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 51, func(vps []bsp.VP) []uint64 { return p.Output(vps) })
			got := p.Output(res.VPs)
			want := seqRank(succ, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d v=%d: rank[%d] = %d, want %d", n, v, i, got[i], want[i])
				}
			}
		}
	}
}

func TestListRankMultipleChains(t *testing.T) {
	r := prng.New(3)
	for _, n := range []int{20, 150} {
		for _, lists := range []int{2, 5} {
			succ := randomChains(r, n, lists)
			p, err := cgmgraph.NewListRank(succ, nil, 4)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 53, func(vps []bsp.VP) []uint64 { return p.Output(vps) })
			got := p.Output(res.VPs)
			want := seqRank(succ, nil)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d lists=%d: rank[%d] = %d, want %d", n, lists, i, got[i], want[i])
				}
			}
		}
	}
}

func TestListRankWeighted(t *testing.T) {
	r := prng.New(9)
	n := 120
	succ := randomChains(r, n, 3)
	w := make([]uint64, n)
	for i := range w {
		w[i] = uint64(r.Intn(100))
	}
	p, err := cgmgraph.NewListRank(succ, w, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := algtest.RunAll(t, p, 57, func(vps []bsp.VP) []uint64 { return p.Output(vps) })
	got := p.Output(res.VPs)
	want := seqRank(succ, w)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestListRankSignedWeights(t *testing.T) {
	// Two's-complement weights give signed prefix behaviour (used for
	// tree depth via Euler tours): ranks wrap correctly.
	succ := []int{1, 2, 3, -1}
	minusOne := int64(-1)
	w := []uint64{1, uint64(minusOne), 1, 7}
	p, err := cgmgraph.NewListRank(succ, w, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := algtest.RunRef(t, p, 1)
	got := p.Output(res.VPs)
	// rank[3]=0, rank[2]=1, rank[1]=0, rank[0]=1
	want := []uint64{1, 0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rank[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestListRankProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		n := r.Intn(120)
		v := r.Intn(6) + 1
		lists := r.Intn(4) + 1
		succ := randomChains(r, n, lists)
		p, err := cgmgraph.NewListRank(succ, nil, v)
		if err != nil {
			return false
		}
		res, err := bsp.Run(p, bsp.RunOptions{Seed: seed, ValidateContexts: true})
		if err != nil {
			return false
		}
		got := p.Output(res.VPs)
		want := seqRank(succ, nil)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestListRankRejectsBadInput(t *testing.T) {
	if _, err := cgmgraph.NewListRank([]int{0}, nil, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := cgmgraph.NewListRank([]int{5}, nil, 1); err == nil {
		t.Error("out-of-range successor accepted")
	}
	if _, err := cgmgraph.NewListRank([]int{-1}, []uint64{1, 2}, 1); err == nil {
		t.Error("weight length mismatch accepted")
	}
	if _, err := cgmgraph.NewListRank([]int{-1}, nil, 0); err == nil {
		t.Error("v=0 accepted")
	}
}
