package cgmgraph_test

import (
	"testing"

	"embsp/internal/alg/algtest"
	"embsp/internal/alg/cgmgraph"
	"embsp/internal/bsp"
	"embsp/internal/prng"
)

// bruteLCA walks parents upward.
func bruteLCA(parent []int, u, v int) int {
	depth := func(x int) int {
		d := 0
		for parent[x] >= 0 {
			x = parent[x]
			d++
		}
		return d
	}
	du, dv := depth(u), depth(v)
	for du > dv {
		u = parent[u]
		du--
	}
	for dv > du {
		v = parent[v]
		dv--
	}
	for u != v {
		u, v = parent[u], parent[v]
	}
	return u
}

func TestLCA(t *testing.T) {
	r := prng.New(31)
	for _, n := range []int{1, 2, 3, 15, 80} {
		for _, v := range []int{1, 2, 4} {
			edges := randomTree(r, n)
			ref := treeReference(n, edges)
			nq := 2 * n
			queries := make([][2]int, nq)
			for i := range queries {
				queries[i] = [2]int{r.Intn(n), r.Intn(n)}
			}
			p, err := cgmgraph.NewLCA(n, edges, queries, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 83, func(vps []bsp.VP) []uint64 {
				var out []uint64
				for _, a := range p.Output(vps) {
					out = append(out, uint64(a))
				}
				return out
			})
			got := p.Output(res.VPs)
			for i, q := range queries {
				want := bruteLCA(ref.Parent, q[0], q[1])
				if got[i] != want {
					t.Fatalf("n=%d v=%d: LCA(%d,%d) = %d, want %d", n, v, q[0], q[1], got[i], want)
				}
			}
		}
	}
}

func TestLCAEdgeQueries(t *testing.T) {
	// Path: LCA is the shallower endpoint; star: LCA is 0 unless equal.
	n := 10
	var path [][2]int
	for i := 1; i < n; i++ {
		path = append(path, [2]int{i - 1, i})
	}
	queries := [][2]int{{0, 9}, {9, 0}, {4, 4}, {3, 7}, {9, 9}, {0, 0}}
	p, err := cgmgraph.NewLCA(n, path, queries, 3)
	if err != nil {
		t.Fatal(err)
	}
	res := algtest.RunRef(t, p, 89)
	got := p.Output(res.VPs)
	want := []int{0, 0, 4, 3, 9, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("query %d: %d, want %d", i, got[i], want[i])
		}
	}
}

func TestLCARejectsBadQuery(t *testing.T) {
	if _, err := cgmgraph.NewLCA(2, [][2]int{{0, 1}}, [][2]int{{0, 2}}, 1); err == nil {
		t.Error("out-of-range query accepted")
	}
}
