package cgmgraph_test

import (
	"testing"
	"testing/quick"

	"embsp/internal/alg/algtest"
	"embsp/internal/alg/cgmgraph"
	"embsp/internal/bsp"
	"embsp/internal/prng"
)

// randomExpr builds a random binary expression tree with nLeaves
// leaves rooted at node 0. It returns parent/kind/value arrays.
func randomExpr(r *prng.Rand, nLeaves int) (parent []int, kind []uint8, value []uint64) {
	if nLeaves == 1 {
		return []int{-1}, []uint8{cgmgraph.OpLeaf}, []uint64{r.Uint64()}
	}
	// Grow the tree by splitting random leaves.
	parent = []int{-1}
	kind = []uint8{cgmgraph.OpLeaf}
	value = []uint64{0}
	leaves := []int{0}
	for len(leaves) < nLeaves {
		li := r.Intn(len(leaves))
		node := leaves[li]
		if r.Bool() {
			kind[node] = cgmgraph.OpAdd
		} else {
			kind[node] = cgmgraph.OpMul
		}
		for c := 0; c < 2; c++ {
			parent = append(parent, node)
			kind = append(kind, cgmgraph.OpLeaf)
			value = append(value, 0)
			if c == 0 {
				leaves[li] = len(parent) - 1
			} else {
				leaves = append(leaves, len(parent)-1)
			}
		}
	}
	for _, l := range leaves {
		value[l] = r.Uint64() % 1000
	}
	return parent, kind, value
}

// seqEval is the sequential reference over ℤ/2⁶⁴.
func seqEval(parent []int, kind []uint8, value []uint64) uint64 {
	n := len(parent)
	children := make([][]int, n)
	for i := 1; i < n; i++ {
		children[parent[i]] = append(children[parent[i]], i)
	}
	var eval func(i int) uint64
	eval = func(i int) uint64 {
		if kind[i] == cgmgraph.OpLeaf {
			return value[i]
		}
		a, b := eval(children[i][0]), eval(children[i][1])
		if kind[i] == cgmgraph.OpAdd {
			return a + b
		}
		return a * b
	}
	return eval(0)
}

func TestExprTree(t *testing.T) {
	r := prng.New(37)
	for _, leaves := range []int{1, 2, 3, 8, 40, 150} {
		for _, v := range []int{1, 2, 4} {
			parent, kind, value := randomExpr(r, leaves)
			p, err := cgmgraph.NewExprTree(parent, kind, value, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 91, func(vps []bsp.VP) []uint64 {
				return []uint64{p.Output(vps)}
			})
			got := p.Output(res.VPs)
			want := seqEval(parent, kind, value)
			if got != want {
				t.Fatalf("leaves=%d v=%d: value = %d, want %d", leaves, v, got, want)
			}
		}
	}
}

func TestExprTreeDeepChain(t *testing.T) {
	// A left-deep comb: ((((l1 op l2) op l3) ...) — stresses repeated
	// bypassing along one path.
	r := prng.New(41)
	const depth = 60
	parent := []int{-1}
	kind := []uint8{cgmgraph.OpAdd}
	value := []uint64{0}
	cur := 0
	for d := 0; d < depth; d++ {
		// right child: leaf
		parent = append(parent, cur)
		kind = append(kind, cgmgraph.OpLeaf)
		value = append(value, r.Uint64()%100)
		// left child: next operator (or final leaf)
		parent = append(parent, cur)
		if d == depth-1 {
			kind = append(kind, cgmgraph.OpLeaf)
			value = append(value, r.Uint64()%100)
		} else {
			if d%2 == 0 {
				kind = append(kind, cgmgraph.OpMul)
			} else {
				kind = append(kind, cgmgraph.OpAdd)
			}
			value = append(value, 0)
		}
		cur = len(parent) - 1
	}
	p, err := cgmgraph.NewExprTree(parent, kind, value, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := algtest.RunRef(t, p, 93)
	if got, want := p.Output(res.VPs), seqEval(parent, kind, value); got != want {
		t.Fatalf("value = %d, want %d", got, want)
	}
}

func TestExprTreeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		leaves := r.Intn(60) + 1
		v := r.Intn(5) + 1
		parent, kind, value := randomExpr(r, leaves)
		p, err := cgmgraph.NewExprTree(parent, kind, value, v)
		if err != nil {
			return false
		}
		res, err := bsp.Run(p, bsp.RunOptions{Seed: seed, ValidateContexts: true})
		if err != nil {
			return false
		}
		return p.Output(res.VPs) == seqEval(parent, kind, value)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestExprTreeRejectsBadInput(t *testing.T) {
	if _, err := cgmgraph.NewExprTree([]int{0}, []uint8{cgmgraph.OpLeaf}, []uint64{1}, 1); err == nil {
		t.Error("root with parent accepted")
	}
	if _, err := cgmgraph.NewExprTree([]int{-1, 0}, []uint8{cgmgraph.OpAdd, cgmgraph.OpLeaf}, []uint64{0, 1}, 1); err == nil {
		t.Error("unary operator accepted")
	}
	if _, err := cgmgraph.NewExprTree([]int{-1, 0, 0}, []uint8{cgmgraph.OpLeaf, cgmgraph.OpLeaf, cgmgraph.OpLeaf}, []uint64{0, 1, 2}, 1); err == nil {
		t.Error("leaf with children accepted")
	}
}
