package cgmgraph

import (
	"fmt"
	"math/bits"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// LCA answers batched lowest-common-ancestor queries on a tree rooted
// at vertex 0 (the Table 1 "Lowest common ancestor" row): it runs the
// Euler tour (first occurrences and depths), builds a distributed
// sparse table over the depth-by-tour-position array (one superstep
// per doubling level), and resolves every query with the classic
// ±RMQ reduction — LCA(u,v) is the minimum-depth vertex between the
// first occurrences of u and v in the tour.
//
// λ = λ(EulerTour) + ⌊log₂(2n-1)⌋ + 6: the sparse-table levels add a
// logarithmic number of single-superstep exchange rounds on top of the
// tour construction.
type LCA struct {
	v       int
	n       int
	queries [][2]int
	euler   *EulerTour
}

// NewLCA returns the program for the tree (n vertices, n-1 edges,
// rooted at 0) and the query batch on v VPs.
func NewLCA(n int, edges [][2]int, queries [][2]int, v int) (*LCA, error) {
	euler, err := NewEulerTour(n, edges, v)
	if err != nil {
		return nil, err
	}
	for i, q := range queries {
		if q[0] < 0 || q[0] >= n || q[1] < 0 || q[1] >= n {
			return nil, fmt.Errorf("cgmgraph: query %d = %v out of range", i, q)
		}
	}
	return &LCA{v: v, n: n, queries: queries, euler: euler}, nil
}

func (p *LCA) NumVPs() int { return p.v }

// tourLen is the rooted tour vertex-sequence length, 2n-1.
func (p *LCA) tourLen() int { return 2*p.n - 1 }

// maxLevel is the deepest sparse-table level, ⌊log₂ L⌋.
func (p *LCA) maxLevel() int {
	return bits.Len(uint(p.tourLen())) - 1
}

func (p *LCA) MaxContextWords() int {
	maxIdx := cgm.MaxPart(p.tourLen(), p.v)
	maxQ := cgm.MaxPart(len(p.queries), p.v)
	// Euler state, sparse-table levels (2 words per entry), query
	// firsts and lookups (4 words per query), answers, phase words.
	return 16 + p.euler.MaxContextWords() +
		(p.maxLevel()+1)*words.SizeUints(2*maxIdx) +
		words.SizeUints(6*maxQ) + words.SizeUints(maxQ)
}

func (p *LCA) MaxCommWords() int {
	maxIdx := cgm.MaxPart(p.tourLen(), p.v)
	q := len(p.queries)
	c := p.euler.MaxCommWords()
	// Sparse-table pushes: 3 words per owned index per level round.
	if push := 3*maxIdx + 2*p.v + 16; push > c {
		c = push
	}
	// Query traffic: worst case all queries hit one owner.
	if qt := 8*q + 2*p.v + 16; qt > c {
		c = qt
	}
	return c
}

func (p *LCA) NewVP(id int) bsp.VP {
	return &lcaVP{p: p, euler: p.euler.NewVP(id).(*eulerVP)}
}

// LCA phases (after the embedded Euler tour completes).
const (
	lcaPhaseEuler = iota
	lcaPhaseBuild // collect depth-by-position entries; push for level 1
	lcaPhaseLevel // one superstep per sparse-table level
	lcaPhaseFirst // query owners request first occurrences
	lcaPhaseRange // vertex owners replied; issue RMQ lookups
	lcaPhaseLook  // sparse-table owners answer lookups
	lcaPhasePick  // pick the minimum-depth vertex; halt
	lcaPhaseDone
)

type lcaVP struct {
	p     *LCA
	euler *eulerVP
	phase uint64
	level uint64

	st      [][]uint64 // st[ℓ]: (depth, vertex) per owned tour index
	f1, f2  []uint64   // per owned query: first occurrences (^0 unknown)
	answers []uint64   // per owned query: LCA vertex
}

const lcaInvalid = ^uint64(0)

func (vp *lcaVP) idxRange(env *bsp.Env) (int, int) {
	return cgm.Dist(vp.p.tourLen(), env.NumVPs(), env.ID())
}

func (vp *lcaVP) qRange(env *bsp.Env) (int, int) {
	return cgm.Dist(len(vp.p.queries), env.NumVPs(), env.ID())
}

// pushLevel ships this VP's st[ℓ] entries to the owners of the
// indices that need them for level ℓ+1 (target = idx - 2^ℓ).
func (vp *lcaVP) pushLevel(env *bsp.Env, lvl int) {
	L := vp.p.tourLen()
	shift := 1 << lvl
	lo, hi := vp.idxRange(env)
	parts := make([][]uint64, env.NumVPs())
	row := vp.st[lvl]
	for i := lo; i < hi; i++ {
		target := i - shift
		if target < 0 {
			continue
		}
		if row[(i-lo)*2] == lcaInvalid {
			continue
		}
		d := cgm.Owner(L, vp.p.v, target)
		parts[d] = append(parts[d], uint64(i), row[(i-lo)*2], row[(i-lo)*2+1])
	}
	for d, part := range parts {
		if len(part) > 0 {
			env.Send(d, part)
		}
	}
	env.Charge(int64(hi - lo))
}

func (vp *lcaVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	v := env.NumVPs()
	L := vp.p.tourLen()
	switch vp.phase {
	case lcaPhaseEuler:
		done, err := vp.euler.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		// Emit (tour index, depth, vertex): position t of the rooted
		// sequence is head(arc at position t-1); depth(head(a)) is the
		// ±1 prefix-inclusive sum 1 - rank2(a) + w(a).
		parts := make([][]uint64, v)
		for i := range vp.euler.pos {
			var depth uint64
			if vp.euler.pos[i] < vp.euler.posRev[i] {
				depth = 2 - vp.euler.ranker.Rank[i] // down arc, w=+1
			} else {
				depth = -vp.euler.ranker.Rank[i] // up arc, w=-1
			}
			idx := vp.euler.pos[i] + 1
			d := cgm.Owner(L, v, int(idx))
			parts[d] = append(parts[d], idx, depth, vp.euler.head[i])
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(len(vp.euler.pos)))
		vp.phase = lcaPhaseBuild
		return false, nil

	case lcaPhaseBuild:
		lo, hi := vp.idxRange(env)
		row := make([]uint64, 2*(hi-lo))
		for i := range row {
			row[i] = lcaInvalid
		}
		for _, m := range in {
			p := m.Payload
			for i := 0; i+3 <= len(p); i += 3 {
				slot := int(p[i]) - lo
				row[slot*2] = p[i+1]
				row[slot*2+1] = p[i+2]
			}
		}
		if lo == 0 && hi > 0 {
			row[0], row[1] = 0, 0 // the root opens the tour
		}
		vp.st = [][]uint64{row}
		if vp.p.maxLevel() == 0 {
			vp.phase = lcaPhaseFirst
			return vp.Step(env, nil)
		}
		vp.pushLevel(env, 0)
		vp.level = 1
		vp.phase = lcaPhaseLevel
		return false, nil

	case lcaPhaseLevel:
		lo, hi := vp.idxRange(env)
		lvl := int(vp.level)
		shift := 1 << (lvl - 1)
		// Remote sources pushed last superstep, keyed by source index.
		remote := make(map[int][2]uint64)
		for _, m := range in {
			p := m.Payload
			for i := 0; i+3 <= len(p); i += 3 {
				remote[int(p[i])] = [2]uint64{p[i+1], p[i+2]}
			}
		}
		prev := vp.st[lvl-1]
		row := make([]uint64, 2*(hi-lo))
		for i := lo; i < hi; i++ {
			row[(i-lo)*2], row[(i-lo)*2+1] = lcaInvalid, lcaInvalid
			if i+(1<<lvl) > L {
				continue
			}
			d1, v1 := prev[(i-lo)*2], prev[(i-lo)*2+1]
			src := i + shift
			var d2, v2 uint64
			if src >= lo && src < hi {
				d2, v2 = prev[(src-lo)*2], prev[(src-lo)*2+1]
			} else if e, ok := remote[src]; ok {
				d2, v2 = e[0], e[1]
			} else {
				return false, fmt.Errorf("cgmgraph: lca level %d missing source index %d", lvl, src)
			}
			if d2 < d1 || (d2 == d1 && v2 < v1) {
				d1, v1 = d2, v2
			}
			row[(i-lo)*2], row[(i-lo)*2+1] = d1, v1
		}
		vp.st = append(vp.st, row)
		env.Charge(int64(hi - lo))
		if lvl < vp.p.maxLevel() {
			vp.pushLevel(env, lvl)
			vp.level++
			return false, nil
		}
		vp.phase = lcaPhaseFirst
		return vp.Step(env, nil)

	case lcaPhaseFirst:
		qlo, qhi := vp.qRange(env)
		vp.f1 = make([]uint64, qhi-qlo)
		vp.f2 = make([]uint64, qhi-qlo)
		parts := make([][]uint64, v)
		for qi := qlo; qi < qhi; qi++ {
			q := vp.p.queries[qi]
			for which, vertex := range []int{q[0], q[1]} {
				d := cgm.Owner(vp.p.n, v, vertex)
				parts[d] = append(parts[d], uint64(qi), uint64(which), uint64(vertex))
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(qhi - qlo))
		vp.phase = lcaPhaseRange
		return false, nil

	case lcaPhaseRange:
		// Answer first-occurrence requests for owned vertices.
		vlo, _ := vp.euler.vertRange(env)
		parts := make([][]uint64, v)
		for _, m := range in {
			p := m.Payload
			for i := 0; i+3 <= len(p); i += 3 {
				vertex := int(p[i+2])
				parts[m.Src] = append(parts[m.Src], p[i], p[i+1], vp.euler.first[vertex-vlo])
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		vp.phase = lcaPhaseLook
		return false, nil

	case lcaPhaseLook:
		// Absorb first occurrences; issue the two RMQ lookups.
		qlo, qhi := vp.qRange(env)
		for _, m := range in {
			p := m.Payload
			for i := 0; i+3 <= len(p); i += 3 {
				qi := int(p[i]) - qlo
				if p[i+1] == 0 {
					vp.f1[qi] = p[i+2]
				} else {
					vp.f2[qi] = p[i+2]
				}
			}
		}
		parts := make([][]uint64, v)
		for qi := qlo; qi < qhi; qi++ {
			lo, hi := vp.f1[qi-qlo], vp.f2[qi-qlo]
			if lo > hi {
				lo, hi = hi, lo
			}
			span := int(hi - lo + 1)
			lvl := bits.Len(uint(span)) - 1
			for slot, idx := range []uint64{lo, hi - uint64(int(1)<<lvl) + 1} {
				d := cgm.Owner(L, v, int(idx))
				parts[d] = append(parts[d], uint64(qi), uint64(slot), uint64(lvl), idx)
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(qhi - qlo))
		vp.phase = lcaPhasePick
		return false, nil

	case lcaPhasePick:
		// Answer RMQ lookups from the owned sparse-table rows.
		lo, _ := vp.idxRange(env)
		parts := make([][]uint64, v)
		for _, m := range in {
			p := m.Payload
			for i := 0; i+4 <= len(p); i += 4 {
				lvl := int(p[i+2])
				idx := int(p[i+3])
				row := vp.st[lvl]
				parts[m.Src] = append(parts[m.Src], p[i], p[i+1], row[(idx-lo)*2], row[(idx-lo)*2+1])
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		vp.phase = lcaPhaseDone
		return false, nil

	case lcaPhaseDone:
		qlo, qhi := vp.qRange(env)
		type cand struct{ depth, vertex uint64 }
		best := make([]cand, qhi-qlo)
		for i := range best {
			best[i] = cand{lcaInvalid, lcaInvalid}
		}
		for _, m := range in {
			p := m.Payload
			for i := 0; i+4 <= len(p); i += 4 {
				qi := int(p[i]) - qlo
				d, vx := p[i+2], p[i+3]
				if d < best[qi].depth || (d == best[qi].depth && vx < best[qi].vertex) {
					best[qi] = cand{d, vx}
				}
			}
		}
		vp.answers = make([]uint64, qhi-qlo)
		for i, b := range best {
			vp.answers[i] = b.vertex
		}
		return true, nil

	default:
		return false, fmt.Errorf("cgmgraph: lca VP stepped after completion")
	}
}

func (vp *lcaVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	enc.PutUint(vp.level)
	vp.euler.Save(enc)
	enc.PutUint(uint64(len(vp.st)))
	for _, row := range vp.st {
		enc.PutUints(row)
	}
	enc.PutUints(vp.f1)
	enc.PutUints(vp.f2)
	enc.PutUints(vp.answers)
}

func (vp *lcaVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	vp.level = dec.Uint()
	vp.euler.Load(dec)
	nlv := int(dec.Uint())
	vp.st = make([][]uint64, nlv)
	for i := range vp.st {
		vp.st[i] = dec.Uints()
	}
	vp.f1 = dec.Uints()
	vp.f2 = dec.Uints()
	vp.answers = dec.Uints()
}

// Output returns the LCA vertex per query index.
func (p *LCA) Output(vps []bsp.VP) []int {
	out := make([]int, 0, len(p.queries))
	for _, vp := range vps {
		for _, a := range vp.(*lcaVP).answers {
			out = append(out, int(a))
		}
	}
	return out
}
