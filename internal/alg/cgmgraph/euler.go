package cgmgraph

import (
	"fmt"
	"sort"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// EulerTour computes an Euler tour of an undirected tree rooted at
// vertex 0 and the standard tree applications driven by it (the
// Table 1 "Euler tour (tree)" row, which also powers tree rooting,
// depth and subtree-size computations): for every vertex its parent,
// depth and subtree size, and for every arc its tour position.
//
// CGM algorithm: edge endpoints are routed to their vertex owners,
// which assemble circular adjacency successor pointers (the classic
// Euler-tour successor: succ(u→v) is the arc out of v following u in
// v's adjacency ring, with the ring broken at the root). Two embedded
// list rankings follow: one with unit weights (tour positions) and
// one with ±1 weights over down/up arcs (depths). Subtree sizes fall
// out of the positions of an arc and its reversal.
type EulerTour struct {
	v     int
	n     int
	edges [][2]int
}

// NewEulerTour returns the program for a tree with n vertices and
// n-1 edges on v VPs. The tree is rooted at vertex 0.
func NewEulerTour(n int, edges [][2]int, v int) (*EulerTour, error) {
	if v <= 0 {
		return nil, fmt.Errorf("cgmgraph: v = %d, want > 0", v)
	}
	if n < 1 {
		return nil, fmt.Errorf("cgmgraph: n = %d, want >= 1", n)
	}
	if len(edges) != n-1 {
		return nil, fmt.Errorf("cgmgraph: %d edges for %d vertices, want n-1", len(edges), n)
	}
	for i, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n || e[0] == e[1] {
			return nil, fmt.Errorf("cgmgraph: edge %d = %v invalid", i, e)
		}
	}
	return &EulerTour{v: v, n: n, edges: edges}, nil
}

func (p *EulerTour) NumVPs() int { return p.v }

func (p *EulerTour) numArcs() int { return 2 * len(p.edges) }

func (p *EulerTour) MaxContextWords() int {
	arcs := p.numArcs()
	muRank, _ := rankerBounds(arcs+1, p.v)
	maxArcs := cgm.MaxPart(arcs, p.v)
	maxVerts := cgm.MaxPart(p.n, p.v)
	// Ranker, arc tables (origSucc, tail, head, pos, posRev), vertex
	// outputs, worst-case adjacency of owned vertices (whole tree at
	// one owner for a star), phases.
	return 16 + muRank + 8*words.SizeUints(maxArcs) + 4*words.SizeUints(maxVerts) + words.SizeUints(4*arcs)
}

func (p *EulerTour) MaxCommWords() int {
	arcs := p.numArcs()
	_, gammaRank := rankerBounds(arcs+1, p.v)
	// Adjacency build: worst case one vertex owner receives every
	// edge; succ assignments: 5 words per arc; pos exchange and
	// result routing: O(arcs/v · v) bounded by O(arcs).
	c := 5*arcs + 8*p.v + 64
	if gammaRank > c {
		c = gammaRank
	}
	return c
}

// Euler phases.
const (
	euAdj     = iota // edges → vertex owners
	euSucc           // vertex owners assemble successor assignments
	euRank1          // unit-weight ranking (tour positions)
	euSwap           // exchange positions with reverse arcs
	euRank2          // ±1-weight ranking (depths)
	euRoute          // per-arc results → vertex owners
	euCollect        // assemble vertex outputs
	euDone
)

type eulerVP struct {
	p     *EulerTour
	phase uint64

	ranker   Ranker
	origSucc []uint64 // successor assignments (kept across rankings)
	tail     []uint64 // per owned arc
	head     []uint64
	pos      []uint64 // tour position per owned arc
	posRev   []uint64 // tour position of the reverse arc

	// Vertex outputs for the owned vertex block.
	parent []uint64
	depth  []uint64
	size   []uint64
	first  []uint64 // first tour occurrence (down-arc position + 1)
}

func (p *EulerTour) NewVP(id int) bsp.VP {
	return &eulerVP{p: p}
}

func (vp *eulerVP) arcRange(env *bsp.Env) (int, int) {
	return cgm.Dist(vp.p.numArcs(), env.NumVPs(), env.ID())
}

func (vp *eulerVP) vertRange(env *bsp.Env) (int, int) {
	return cgm.Dist(vp.p.n, env.NumVPs(), env.ID())
}

func (vp *eulerVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	v := env.NumVPs()
	switch vp.phase {
	case euAdj:
		// Route each edge to both endpoint owners: (vertex, nbr,
		// edge id, orientation). The arc out of `vertex` toward
		// `nbr` has id 2·edge+orient.
		elo, ehi := cgm.Dist(len(vp.p.edges), v, env.ID())
		parts := make([][]uint64, v)
		for j := elo; j < ehi; j++ {
			a, b := vp.p.edges[j][0], vp.p.edges[j][1]
			da := cgm.Owner(vp.p.n, v, a)
			parts[da] = append(parts[da], uint64(a), uint64(b), uint64(j), 0)
			db := cgm.Owner(vp.p.n, v, b)
			parts[db] = append(parts[db], uint64(b), uint64(a), uint64(j), 1)
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(ehi - elo))
		vp.phase = euSucc
		return false, nil

	case euSucc:
		// Assemble per-vertex adjacency rings and emit successor
		// assignments: succ(arc nbr→w) = arc w→next(nbr), broken at
		// the root's last in-arc.
		type adj struct{ nbr, edge, orient uint64 }
		byVertex := make(map[uint64][]adj)
		for _, m := range in {
			p := m.Payload
			for i := 0; i+4 <= len(p); i += 4 {
				byVertex[p[i]] = append(byVertex[p[i]], adj{p[i+1], p[i+2], p[i+3]})
			}
		}
		arcs := vp.p.numArcs()
		parts := make([][]uint64, v)
		keys := make([]uint64, 0, len(byVertex))
		for w := range byVertex {
			keys = append(keys, w)
		}
		sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
		for _, w := range keys {
			list := byVertex[w]
			sort.Slice(list, func(a, b int) bool { return list[a].nbr < list[b].nbr })
			deg := len(list)
			for i, e := range list {
				inArc := 2*e.edge + 1 - e.orient // nbr → w
				outNext := list[(i+1)%deg]       // w → next neighbour
				succ := 2*outNext.edge + outNext.orient
				if w == 0 && i == deg-1 {
					succ = none // break the tour after the root's last in-arc
				}
				d := cgm.Owner(arcs, v, int(inArc))
				parts[d] = append(parts[d], inArc, succ, e.nbr, w)
			}
			env.Charge(int64(deg) * 4)
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		vp.phase = euRank1
		return false, nil

	case euRank1:
		if vp.origSucc == nil {
			// First superstep of the ranking: absorb the successor
			// assignments, then start the embedded ranker.
			alo, ahi := vp.arcRange(env)
			vp.origSucc = make([]uint64, ahi-alo)
			vp.tail = make([]uint64, ahi-alo)
			vp.head = make([]uint64, ahi-alo)
			for i := range vp.origSucc {
				vp.origSucc[i] = none
			}
			for _, m := range in {
				p := m.Payload
				for i := 0; i+4 <= len(p); i += 4 {
					slot := int(p[i]) - alo
					vp.origSucc[slot] = p[i+1]
					vp.tail[slot] = p[i+2]
					vp.head[slot] = p[i+3]
				}
			}
			w := make([]uint64, ahi-alo)
			for i := range w {
				w[i] = 1
			}
			vp.ranker = Ranker{N: vp.p.numArcs(), Succ: append([]uint64(nil), vp.origSucc...), Weight: w}
			in = nil
		}
		done, err := vp.ranker.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		// Tour position = numArcs-1 - rank (the head has full rank).
		arcs := vp.p.numArcs()
		alo := 0
		alo, _ = vp.arcRange(env)
		vp.pos = make([]uint64, len(vp.ranker.Rank))
		parts := make([][]uint64, v)
		for i, rk := range vp.ranker.Rank {
			vp.pos[i] = uint64(arcs-1) - rk
			rev := uint64(alo+i) ^ 1
			d := cgm.Owner(arcs, v, int(rev))
			parts[d] = append(parts[d], rev, vp.pos[i])
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(len(vp.pos)))
		vp.phase = euSwap
		return false, nil

	case euSwap:
		alo, ahi := vp.arcRange(env)
		vp.posRev = make([]uint64, ahi-alo)
		for _, m := range in {
			p := m.Payload
			for i := 0; i+2 <= len(p); i += 2 {
				vp.posRev[int(p[i])-alo] = p[i+1]
			}
		}
		// Second ranking: +1 for down arcs (pos < posRev), -1 for up.
		w := make([]uint64, ahi-alo)
		for i := range w {
			if vp.pos[i] < vp.posRev[i] {
				w[i] = 1
			} else {
				w[i] = ^uint64(0) // -1 two's complement
			}
		}
		vp.ranker = Ranker{N: vp.p.numArcs(), Succ: append([]uint64(nil), vp.origSucc...), Weight: w}
		vp.phase = euRank2
		return vp.Step(env, nil)

	case euRank2:
		done, err := vp.ranker.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		// For every owned down arc a = (tail→head):
		//   depth(head) = w(a) - rank2(a)  (prefix-inclusive sum)
		//   size(head) = (posRev - pos + 1) / 2
		//   parent(head) = tail
		alo, _ := vp.arcRange(env)
		_ = alo
		parts := make([][]uint64, v)
		for i := range vp.pos {
			if vp.origSucc[i] == none && vp.head[i] != 0 {
				return false, fmt.Errorf("cgmgraph: tour tail arc does not enter the root")
			}
			if vp.pos[i] < vp.posRev[i] { // down arc
				// prefix-inclusive ±1 sum up to a:
				// rank2(head) - rank2(a) + w(a) with rank2(head) = 1
				// (ranks exclude the tail arc's weight, and the tail
				// is the final up-arc into the root) and w(a) = +1.
				depth := 2 - vp.ranker.Rank[i]
				size := (vp.posRev[i] - vp.pos[i] + 1) / 2
				d := cgm.Owner(vp.p.n, v, int(vp.head[i]))
				// first occurrence of head in the rooted tour vertex
				// sequence (root prepended at index 0).
				parts[d] = append(parts[d], vp.head[i], vp.tail[i], depth, size, vp.pos[i]+1)
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(len(vp.pos)))
		vp.phase = euCollect
		return false, nil

	case euCollect:
		vlo, vhi := vp.vertRange(env)
		vp.parent = make([]uint64, vhi-vlo)
		vp.depth = make([]uint64, vhi-vlo)
		vp.size = make([]uint64, vhi-vlo)
		vp.first = make([]uint64, vhi-vlo)
		for i := range vp.parent {
			vp.parent[i] = none
		}
		for _, m := range in {
			p := m.Payload
			for i := 0; i+5 <= len(p); i += 5 {
				slot := int(p[i]) - vlo
				vp.parent[slot] = p[i+1]
				vp.depth[slot] = p[i+2]
				vp.size[slot] = p[i+3]
				vp.first[slot] = p[i+4]
			}
		}
		if vlo <= 0 && 0 < vhi {
			vp.parent[0-vlo] = none
			vp.depth[0-vlo] = 0
			vp.size[0-vlo] = uint64(vp.p.n)
			vp.first[0-vlo] = 0
		}
		vp.phase = euDone
		return true, nil

	default:
		return false, fmt.Errorf("cgmgraph: euler VP stepped after completion")
	}
}

func (vp *eulerVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	enc.PutBool(vp.origSucc != nil)
	enc.PutUints(vp.origSucc)
	enc.PutUints(vp.tail)
	enc.PutUints(vp.head)
	enc.PutUints(vp.pos)
	enc.PutUints(vp.posRev)
	enc.PutUints(vp.parent)
	enc.PutUints(vp.depth)
	enc.PutUints(vp.size)
	enc.PutUints(vp.first)
	vp.ranker.Save(enc)
}

func (vp *eulerVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	started := dec.Bool()
	vp.origSucc = dec.Uints()
	if !started {
		vp.origSucc = nil
	}
	vp.tail = dec.Uints()
	vp.head = dec.Uints()
	vp.pos = dec.Uints()
	vp.posRev = dec.Uints()
	vp.parent = dec.Uints()
	vp.depth = dec.Uints()
	vp.size = dec.Uints()
	vp.first = dec.Uints()
	vp.ranker.N = vp.p.numArcs()
	vp.ranker.Load(dec)
}

// TreeInfo is the per-vertex result of an Euler tour run. First is
// the vertex's first occurrence in the rooted tour vertex sequence
// (an ancestor-consistent interval numbering: the subtree of v covers
// tour indices [First[v], First[v]+2·Size[v]-2]).
type TreeInfo struct {
	Parent []int // -1 at the root
	Depth  []int
	Size   []int
	First  []int
}

// Output assembles the tree information.
func (p *EulerTour) Output(vps []bsp.VP) TreeInfo {
	info := TreeInfo{
		Parent: make([]int, 0, p.n),
		Depth:  make([]int, 0, p.n),
		Size:   make([]int, 0, p.n),
		First:  make([]int, 0, p.n),
	}
	for _, vp := range vps {
		e := vp.(*eulerVP)
		for i := range e.parent {
			if e.parent[i] == none {
				info.Parent = append(info.Parent, -1)
			} else {
				info.Parent = append(info.Parent, int(e.parent[i]))
			}
			info.Depth = append(info.Depth, int(int64(e.depth[i])))
			info.Size = append(info.Size, int(e.size[i]))
			info.First = append(info.First, int(e.first[i]))
		}
	}
	return info
}

// ArcPositions returns the tour position of every arc (arc 2j is
// edge j oriented as given, 2j+1 the reversal).
func (p *EulerTour) ArcPositions(vps []bsp.VP) []int {
	var out []int
	for _, vp := range vps {
		for _, q := range vp.(*eulerVP).pos {
			out = append(out, int(q))
		}
	}
	return out
}
