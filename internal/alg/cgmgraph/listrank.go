package cgmgraph

import (
	"fmt"
	"math/bits"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// ListRank is the Table 1 "List ranking" row: given successor
// pointers forming disjoint chains, compute every node's weighted
// distance to the end of its chain.
type ListRank struct {
	v      int
	n      int
	succ   []int
	weight []uint64
}

// NewListRank returns the program for the given successor array
// (succ[i] = -1 marks a chain tail) and optional weights (nil means
// unit weights) on v VPs.
func NewListRank(succ []int, weight []uint64, v int) (*ListRank, error) {
	if v <= 0 {
		return nil, fmt.Errorf("cgmgraph: v = %d, want > 0", v)
	}
	if weight != nil && len(weight) != len(succ) {
		return nil, fmt.Errorf("cgmgraph: %d nodes but %d weights", len(succ), len(weight))
	}
	for i, s := range succ {
		if s < -1 || s >= len(succ) || s == i {
			return nil, fmt.Errorf("cgmgraph: succ[%d] = %d out of range", i, s)
		}
	}
	return &ListRank{v: v, n: len(succ), succ: succ, weight: weight}, nil
}

func (p *ListRank) NumVPs() int { return p.v }

// rankerBounds computes shared µ/γ bounds for a ranker over n nodes.
func rankerBounds(n, v int) (mu, gamma int) {
	maxOwn := cgm.MaxPart(n, v)
	// Subscriptions accumulate one entry per contraction round in the
	// worst case; rounds are O(log n) with overwhelming probability.
	maxSubs := maxOwn * (2*bits.Len(uint(n+1)) + 8)
	rk := Ranker{}
	mu = 4 + rk.SaveSize(maxOwn, maxSubs)
	thr := rankerThreshold(n, v)
	gamma = 20*maxOwn + 8*thr + 8*v + 64
	return mu, gamma
}

func (p *ListRank) MaxContextWords() int {
	mu, _ := rankerBounds(p.n, p.v)
	return mu
}

func (p *ListRank) MaxCommWords() int {
	_, gamma := rankerBounds(p.n, p.v)
	return gamma
}

func (p *ListRank) NewVP(id int) bsp.VP {
	lo, hi := cgm.Dist(p.n, p.v, id)
	succ := make([]uint64, hi-lo)
	weight := make([]uint64, hi-lo)
	for i := lo; i < hi; i++ {
		if p.succ[i] < 0 {
			succ[i-lo] = none
		} else {
			succ[i-lo] = uint64(p.succ[i])
		}
		if p.weight == nil {
			weight[i-lo] = 1
		} else {
			weight[i-lo] = p.weight[i]
		}
	}
	return &listRankVP{ranker: Ranker{N: p.n, Succ: succ, Weight: weight}}
}

type listRankVP struct {
	ranker Ranker
}

func (vp *listRankVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	return vp.ranker.Step(env, in)
}

func (vp *listRankVP) Save(enc *words.Encoder) { vp.ranker.Save(enc) }
func (vp *listRankVP) Load(dec *words.Decoder) { vp.ranker.Load(dec) }

// Output returns the rank of every node: the sum of weights along the
// chain from the node to its tail (hop count for unit weights).
func (p *ListRank) Output(vps []bsp.VP) []uint64 {
	out := make([]uint64, 0, p.n)
	for _, vp := range vps {
		out = append(out, vp.(*listRankVP).ranker.Rank...)
	}
	return out
}

// Rounds returns the contraction rounds used (an observable for the
// O(log p) claim); valid after a run.
func (p *ListRank) Rounds(vps []bsp.VP) int {
	r := 0
	for _, vp := range vps {
		if x := vp.(*listRankVP).ranker.Rounds; x > r {
			r = x
		}
	}
	return r
}
