package cgmgraph_test

import (
	"testing"

	"embsp/internal/alg/algtest"
	"embsp/internal/alg/cgmgraph"
	"embsp/internal/bsp"
	"embsp/internal/prng"
)

// unionFind is the sequential reference for components.
type unionFind []int

func newUF(n int) unionFind {
	u := make(unionFind, n)
	for i := range u {
		u[i] = i
	}
	return u
}

func (u unionFind) find(x int) int {
	for u[x] != x {
		u[x] = u[u[x]]
		x = u[x]
	}
	return x
}

func (u unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	u[ra] = rb
	return true
}

// minLabels returns per-vertex minimum component vertex id.
func minLabels(n int, edges [][2]int) []int {
	uf := newUF(n)
	for _, e := range edges {
		uf.union(e[0], e[1])
	}
	minOf := make(map[int]int)
	for i := 0; i < n; i++ {
		r := uf.find(i)
		if m, ok := minOf[r]; !ok || i < m {
			minOf[r] = i
		}
	}
	out := make([]int, n)
	for i := 0; i < n; i++ {
		out[i] = minOf[uf.find(i)]
	}
	return out
}

func randGraph(r *prng.Rand, n, m int) [][2]int {
	var edges [][2]int
	for len(edges) < m {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			edges = append(edges, [2]int{a, b})
		}
	}
	return edges
}

func TestCCRandomGraphs(t *testing.T) {
	r := prng.New(1)
	cases := []struct{ n, m int }{
		{1, 0}, {2, 0}, {2, 1}, {10, 5}, {30, 15}, {50, 100}, {60, 30},
	}
	for _, c := range cases {
		for _, v := range []int{1, 2, 4} {
			edges := randGraph(r, c.n, c.m)
			p, err := cgmgraph.NewCC(c.n, edges, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 61, func(vps []bsp.VP) []uint64 {
				var out []uint64
				for _, x := range p.Output(vps) {
					out = append(out, uint64(x))
				}
				for _, x := range p.Forest(vps) {
					out = append(out, uint64(x))
				}
				return out
			})
			got := p.Output(res.VPs)
			want := minLabels(c.n, edges)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d m=%d v=%d: comp[%d] = %d, want %d", c.n, c.m, v, i, got[i], want[i])
				}
			}
			validateForest(t, c.n, edges, p.Forest(res.VPs))
		}
	}
}

// validateForest checks the forest edges form a spanning forest: the
// right count per component and acyclic.
func validateForest(t *testing.T, n int, edges [][2]int, forest []int) {
	t.Helper()
	uf := newUF(n)
	for _, ei := range forest {
		if ei < 0 || ei >= len(edges) {
			t.Fatalf("forest edge index %d out of range", ei)
		}
		if !uf.union(edges[ei][0], edges[ei][1]) {
			t.Fatalf("forest edge %d creates a cycle", ei)
		}
	}
	// Same component structure as the full graph.
	full := newUF(n)
	for _, e := range edges {
		full.union(e[0], e[1])
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if (uf.find(i) == uf.find(j)) != (full.find(i) == full.find(j)) {
				t.Fatalf("forest connectivity differs from graph at (%d,%d)", i, j)
			}
		}
	}
}

func TestCCStructuredGraphs(t *testing.T) {
	// Path, cycle, star, two components, grid.
	path := func(n int) [][2]int {
		var e [][2]int
		for i := 0; i+1 < n; i++ {
			e = append(e, [2]int{i, i + 1})
		}
		return e
	}
	star := func(n int) [][2]int {
		var e [][2]int
		for i := 1; i < n; i++ {
			e = append(e, [2]int{0, i})
		}
		return e
	}
	cases := []struct {
		name  string
		n     int
		edges [][2]int
	}{
		{"path", 20, path(20)},
		{"star", 20, star(20)},
		{"cycle", 12, append(path(12), [2]int{11, 0})},
		{"twoComponents", 14, append(path(7), [][2]int{{7, 8}, {8, 9}, {9, 10}, {10, 11}, {11, 12}, {12, 13}}...)},
		{"isolated", 9, nil},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p, err := cgmgraph.NewCC(c.n, c.edges, 3)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunRef(t, p, 67)
			got := p.Output(res.VPs)
			want := minLabels(c.n, c.edges)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("comp[%d] = %d, want %d", i, got[i], want[i])
				}
			}
			validateForest(t, c.n, c.edges, p.Forest(res.VPs))
		})
	}
}

func TestCCRejectsBadInput(t *testing.T) {
	if _, err := cgmgraph.NewCC(3, [][2]int{{0, 3}}, 1); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if _, err := cgmgraph.NewCC(3, [][2]int{{1, 1}}, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := cgmgraph.NewCC(3, nil, 0); err == nil {
		t.Error("v=0 accepted")
	}
}

// randomTree builds a random tree on n vertices: vertex i attaches to
// a random earlier vertex.
func randomTree(r *prng.Rand, n int) [][2]int {
	var edges [][2]int
	for i := 1; i < n; i++ {
		p := r.Intn(i)
		if r.Bool() {
			edges = append(edges, [2]int{i, p})
		} else {
			edges = append(edges, [2]int{p, i})
		}
	}
	return edges
}

// treeReference computes parent/depth/size rooted at 0 sequentially.
func treeReference(n int, edges [][2]int) cgmgraph.TreeInfo {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	info := cgmgraph.TreeInfo{
		Parent: make([]int, n),
		Depth:  make([]int, n),
		Size:   make([]int, n),
	}
	for i := range info.Parent {
		info.Parent[i] = -1
	}
	var dfs func(u, par, depth int) int
	dfs = func(u, par, depth int) int {
		info.Parent[u] = par
		info.Depth[u] = depth
		size := 1
		for _, w := range adj[u] {
			if w != par {
				size += dfs(w, u, depth+1)
			}
		}
		info.Size[u] = size
		return size
	}
	dfs(0, -1, 0)
	info.Parent[0] = -1
	return info
}

func TestEulerTour(t *testing.T) {
	r := prng.New(23)
	for _, n := range []int{1, 2, 3, 10, 60} {
		for _, v := range []int{1, 2, 4} {
			edges := randomTree(r, n)
			p, err := cgmgraph.NewEulerTour(n, edges, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 71, func(vps []bsp.VP) []uint64 {
				info := p.Output(vps)
				var out []uint64
				for i := range info.Parent {
					out = append(out, uint64(int64(info.Parent[i])), uint64(int64(info.Depth[i])), uint64(info.Size[i]))
				}
				return out
			})
			got := p.Output(res.VPs)
			want := treeReference(n, edges)
			for i := 0; i < n; i++ {
				if got.Parent[i] != want.Parent[i] {
					t.Fatalf("n=%d v=%d: parent[%d] = %d, want %d", n, v, i, got.Parent[i], want.Parent[i])
				}
				if got.Depth[i] != want.Depth[i] {
					t.Fatalf("n=%d v=%d: depth[%d] = %d, want %d", n, v, i, got.Depth[i], want.Depth[i])
				}
				if got.Size[i] != want.Size[i] {
					t.Fatalf("n=%d v=%d: size[%d] = %d, want %d", n, v, i, got.Size[i], want.Size[i])
				}
			}
		}
	}
}

func TestEulerTourPositionsArePermutation(t *testing.T) {
	r := prng.New(29)
	n := 40
	edges := randomTree(r, n)
	p, err := cgmgraph.NewEulerTour(n, edges, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := algtest.RunRef(t, p, 73)
	pos := p.ArcPositions(res.VPs)
	if len(pos) != 2*(n-1) {
		t.Fatalf("%d positions, want %d", len(pos), 2*(n-1))
	}
	seen := make([]bool, len(pos))
	for _, q := range pos {
		if q < 0 || q >= len(pos) || seen[q] {
			t.Fatalf("positions are not a permutation: %v", pos)
		}
		seen[q] = true
	}
}

func TestEulerTourStarAndPath(t *testing.T) {
	// Star: all depths 1; path: depths 0..n-1.
	n := 12
	var star, path [][2]int
	for i := 1; i < n; i++ {
		star = append(star, [2]int{0, i})
		path = append(path, [2]int{i - 1, i})
	}
	for name, edges := range map[string][][2]int{"star": star, "path": path} {
		p, err := cgmgraph.NewEulerTour(n, edges, 3)
		if err != nil {
			t.Fatal(err)
		}
		res := algtest.RunRef(t, p, 79)
		got := p.Output(res.VPs)
		want := treeReference(n, edges)
		for i := 0; i < n; i++ {
			if got.Depth[i] != want.Depth[i] || got.Size[i] != want.Size[i] || got.Parent[i] != want.Parent[i] {
				t.Fatalf("%s: vertex %d: got (%d,%d,%d), want (%d,%d,%d)", name, i,
					got.Parent[i], got.Depth[i], got.Size[i],
					want.Parent[i], want.Depth[i], want.Size[i])
			}
		}
	}
}

func TestEulerTourRejectsBadInput(t *testing.T) {
	if _, err := cgmgraph.NewEulerTour(3, [][2]int{{0, 1}}, 1); err == nil {
		t.Error("wrong edge count accepted")
	}
	if _, err := cgmgraph.NewEulerTour(2, [][2]int{{0, 0}}, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if _, err := cgmgraph.NewEulerTour(0, nil, 1); err == nil {
		t.Error("n=0 accepted")
	}
}
