// Package cgmgraph implements the Group C (graph) workloads of the
// paper's Table 1 as CGM programs: list ranking, Euler tour with tree
// applications (parent, depth, subtree size), and connected
// components with spanning forest. The CGM algorithms have λ =
// O(log p)-flavoured round counts (measured λ is reported by the
// bench harness next to the paper's bound).
package cgmgraph

import (
	"fmt"
	"sort"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/prng"
	"embsp/internal/words"
)

// Ranker is an embeddable distributed list-ranking machine in the
// style of the randomized contraction algorithms of Cáceres et al.
// [11]: given n nodes with successor pointers (forming one or more
// disjoint chains) and per-node weights, it computes for every node u
//
//	rank(u) = w(u) + rank(succ(u)),  rank(tail) = 0
//
// i.e. the weighted distance to the end of u's chain (hop count for
// unit weights).
//
// The machine proceeds in three stages:
//
//  1. Contraction rounds: each round, an independent set of nodes
//     (selected by per-node coin flips computable from ids alone) is
//     spliced out; a spliced node remembers its successor and weight
//     at splice time and subscribes to that successor's rank. Every
//     round ends with an active-node count at VP 0.
//  2. When the active count drops below a threshold, VP 0 gathers the
//     remaining chains and ranks them sequentially.
//  3. Expansion: ranks propagate back through the subscription lists,
//     one splice level per superstep, until every node is ranked.
//
// The host VP embeds a Ranker, fills Succ/Weight for its block of
// nodes (block distribution of n nodes over v VPs), and forwards
// Step/Save/Load until Step reports done. The Ranker owns the inbox
// during its activity.
type Ranker struct {
	// N is the global number of nodes; set before the first Step.
	N int
	// Succ holds successor node ids for the VP's owned block
	// (engine: -1 encoded as MaxUint64 marks a chain tail).
	Succ []uint64
	// Weight holds the per-node weights (interpreted as int64,
	// summed with wraparound; unit ranks use 1).
	Weight []uint64
	// Rank holds the results for the owned block once done.
	Rank []uint64
	// Rounds counts the contraction rounds used (observable λ).
	Rounds int

	phase   uint64
	doneCmd bool
	pred    []uint64
	state   []uint64   // 0 active, 1 spliced
	known   []uint64   // rank known flag
	subs    [][]uint64 // per owned node: subscriber (node, addW) pairs
}

// The MaxUint64 value marks "none" for node references.
const none = ^uint64(0)

// Ranker phases.
const (
	rkSetup    = 0 // send pred notifications
	rkContract = 1 // splice rounds
	rkGather   = 2 // ship active chains to VP 0
	rkSolve    = 3 // VP 0 ranks the gathered chains
	rkExpand   = 4 // subscription-driven rank propagation
	rkDone     = 5
)

// Message tags (first payload word).
const (
	rkTagSetPred = iota
	rkTagSetSucc
	rkTagCount
	rkTagCmd
	rkTagChain
	rkTagRank
	rkTagSub
	rkTagUnknown
)

// Commands broadcast by VP 0.
const (
	rkCmdContinue = iota
	rkCmdGather
	rkCmdDone
)

// sortUints sorts a uint64 slice ascending.
func sortUints(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

// rankerThreshold is the active-node count below which VP 0 gathers
// the remaining chains (scaled by v so the gather is an O(n/v + v)
// h-relation).
func rankerThreshold(n, v int) int {
	t := cgm.MaxPart(n, v)
	if t < 4*v {
		t = 4 * v
	}
	return t
}

func (r *Ranker) lo(env *bsp.Env) int {
	lo, _ := cgm.Dist(r.N, env.NumVPs(), env.ID())
	return lo
}

// Active reports whether the Ranker still needs Step calls.
func (r *Ranker) Active() bool { return r.phase != rkDone }

// coin returns the selection coin of a node in a contraction round;
// it is a pure function of (run seed, round, node), so any VP can
// evaluate any node's coin locally without communication.
func coin(seed uint64, round, node uint64) bool {
	return prng.Derive(seed, 0xC01, round, node)&1 == 1
}

// Step advances the ranking by one superstep, returning true when all
// owned ranks are known.
func (r *Ranker) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	v := env.NumVPs()
	lo := r.lo(env)
	own := len(r.Succ)
	if len(r.pred) != own {
		r.pred = make([]uint64, own)
		r.state = make([]uint64, own)
		r.known = make([]uint64, own)
		r.Rank = make([]uint64, own)
		r.subs = make([][]uint64, own)
		for i := range r.pred {
			r.pred[i] = none
		}
	}

	switch r.phase {
	case rkSetup:
		parts := make([][]uint64, v)
		for i, s := range r.Succ {
			if s != none {
				d := cgm.Owner(r.N, v, int(s))
				parts[d] = append(parts[d], rkTagSetPred, s, uint64(lo+i))
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		if env.ID() == 0 {
			// Seed the command pipeline.
			for d := 0; d < v; d++ {
				env.Send(d, []uint64{rkTagCmd, rkCmdContinue})
			}
		}
		env.Send(0, []uint64{rkTagCount, uint64(own)})
		env.Charge(int64(own))
		r.phase = rkContract
		return false, nil

	case rkContract:
		cmd, counts, err := r.applyUpdates(env, in, lo)
		if err != nil {
			return false, err
		}
		if cmd == rkCmdGather {
			// Ship remaining active nodes to VP 0.
			var chain []uint64
			for i := range r.state {
				if r.state[i] == 0 {
					chain = append(chain, uint64(lo+i), r.Succ[i], r.Weight[i])
				}
			}
			if len(chain) > 0 {
				env.Send(0, append([]uint64{rkTagChain}, chain...))
			}
			r.phase = rkSolve
			return false, nil
		}
		if env.ID() == 0 {
			next := rkCmdContinue
			if counts <= uint64(rankerThreshold(r.N, v)) {
				next = rkCmdGather
			}
			for d := 0; d < v; d++ {
				env.Send(d, []uint64{rkTagCmd, uint64(next)})
			}
		}
		// Contraction round: splice out an independent set.
		r.Rounds++
		round := uint64(r.Rounds)
		seed := rankerSeed(env)
		parts := make([][]uint64, v)
		var active uint64
		for i := range r.state {
			if r.state[i] != 0 {
				continue
			}
			u := uint64(lo + i)
			if r.Succ[i] != none && coin(seed, round, u) &&
				(r.pred[i] == none || !coin(seed, round, r.pred[i])) {
				// Splice u out: pred.succ = succ(u) (+w), succ.pred =
				// pred(u); subscribe u to succ(u)'s rank.
				s, w := r.Succ[i], r.Weight[i]
				if r.pred[i] != none {
					d := cgm.Owner(r.N, v, int(r.pred[i]))
					parts[d] = append(parts[d], rkTagSetSucc, r.pred[i], s, w)
				}
				ds := cgm.Owner(r.N, v, int(s))
				parts[ds] = append(parts[ds], rkTagSetPred, s, r.pred[i])
				parts[ds] = append(parts[ds], rkTagSub, s, u, w)
				r.state[i] = 1
				continue
			}
			active++
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Send(0, []uint64{rkTagCount, active})
		env.Charge(int64(own))
		return false, nil

	case rkSolve:
		// Apply the trailing splice updates that arrived with the
		// gathered chains, then (at VP 0) rank the contracted lists.
		if _, _, err := r.applyUpdates(env, in, lo); err != nil {
			return false, err
		}
		if env.ID() == 0 {
			succ := make(map[uint64]uint64)
			weight := make(map[uint64]uint64)
			hasPred := make(map[uint64]bool)
			for _, m := range in {
				if m.Payload[0] != rkTagChain {
					continue
				}
				p := m.Payload[1:]
				for i := 0; i+3 <= len(p); i += 3 {
					succ[p[i]] = p[i+1]
					weight[p[i]] = p[i+2]
					if p[i+1] != none {
						hasPred[p[i+1]] = true
					}
				}
			}
			// Walk every chain from its head, computing ranks from
			// the tail backwards via a stack.
			heads := make([]uint64, 0, len(succ))
			for u := range succ {
				if !hasPred[u] {
					heads = append(heads, u)
				}
			}
			sortUints(heads)
			ranks := make(map[uint64]uint64)
			for _, u := range heads {
				var path []uint64
				for x := u; x != none; {
					if _, ok := succ[x]; !ok {
						return false, fmt.Errorf("cgmgraph: chain reaches unknown node %d", x)
					}
					path = append(path, x)
					if len(path) > len(succ) {
						return false, fmt.Errorf("cgmgraph: chain longer than node count (cycle?)")
					}
					x = succ[x]
				}
				ranks[path[len(path)-1]] = 0
				for i := len(path) - 2; i >= 0; i-- {
					ranks[path[i]] = weight[path[i]] + ranks[path[i+1]]
				}
			}
			if len(ranks) != len(succ) {
				return false, fmt.Errorf("cgmgraph: ranked %d of %d gathered nodes (cycle?)", len(ranks), len(succ))
			}
			ranked := make([]uint64, 0, len(ranks))
			for u := range ranks {
				ranked = append(ranked, u)
			}
			sortUints(ranked)
			parts := make([][]uint64, v)
			for _, u := range ranked {
				d := cgm.Owner(r.N, v, int(u))
				parts[d] = append(parts[d], rkTagRank, u, ranks[u])
			}
			for d, part := range parts {
				if len(part) > 0 {
					env.Send(d, part)
				}
			}
			env.Charge(int64(len(succ)) * 2)
		}
		r.phase = rkExpand
		return false, nil

	case rkExpand:
		if _, _, err := r.applyUpdates(env, in, lo); err != nil {
			return false, err
		}
		if r.doneCmd {
			r.phase = rkDone
			return true, nil
		}
		var unknown uint64
		for i := range r.known {
			if r.known[i] == 0 {
				unknown++
			}
		}
		// VP 0 watches the unknown counts inside applyUpdates and
		// broadcasts DONE once they hit zero; here we only report.
		env.Send(0, []uint64{rkTagUnknown, unknown})
		env.Charge(int64(len(r.known)))
		return false, nil

	default:
		return false, fmt.Errorf("cgmgraph: ranker stepped after completion")
	}
}

// rankerSeed derives the coin seed. Env.Rand streams are
// (id, superstep)-specific, but coins must be globally evaluable, so
// we key purely off a constant; determinism across engines holds
// because the round counter advances identically everywhere.
func rankerSeed(env *bsp.Env) uint64 { return 0x9E3779B97F4A7C15 }

// applyUpdates processes pointer/rank/subscription messages. It
// returns the command broadcast by VP 0 (or rkCmdContinue) and, at
// VP 0, the summed counter values.
func (r *Ranker) applyUpdates(env *bsp.Env, in []bsp.Message, lo int) (cmd int, counts uint64, err error) {
	v := env.NumVPs()
	cmd = rkCmdContinue
	var unknownTotal uint64
	sawUnknown := false
	for _, m := range in {
		p := m.Payload
		i := 0
		for i < len(p) {
			switch p[i] {
			case rkTagSetPred:
				r.pred[int(p[i+1])-lo] = p[i+2]
				i += 3
			case rkTagSetSucc:
				j := int(p[i+1]) - lo
				r.Succ[j] = p[i+2]
				r.Weight[j] += p[i+3]
				i += 4
			case rkTagSub:
				j := int(p[i+1]) - lo
				r.subs[j] = append(r.subs[j], p[i+2], p[i+3])
				i += 4
			case rkTagRank:
				j := int(p[i+1]) - lo
				if r.known[j] == 0 {
					r.known[j] = 1
					r.Rank[j] = p[i+2]
					// Notify subscribers: their rank is ours plus
					// their splice weight.
					for s := 0; s+2 <= len(r.subs[j]); s += 2 {
						u, w := r.subs[j][s], r.subs[j][s+1]
						d := cgm.Owner(r.N, v, int(u))
						env.Send(d, []uint64{rkTagRank, u, r.Rank[j] + w})
					}
					r.subs[j] = nil
				}
				i += 3
			case rkTagCount:
				counts += p[i+1]
				i += 2
			case rkTagUnknown:
				unknownTotal += p[i+1]
				sawUnknown = true
				i += 2
			case rkTagCmd:
				cmd = int(p[i+1])
				if cmd == rkCmdDone {
					r.doneCmd = true
				}
				i += 2
			case rkTagChain:
				i = len(p) // consumed by the solve phase
			default:
				return 0, 0, fmt.Errorf("cgmgraph: unknown ranker tag %d", p[i])
			}
		}
	}
	if env.ID() == 0 && sawUnknown && r.phase == rkExpand && !r.doneCmd {
		next := rkCmdContinue
		if unknownTotal == 0 {
			next = rkCmdDone
		}
		for d := 0; d < v; d++ {
			env.Send(d, []uint64{rkTagCmd, uint64(next)})
		}
	}
	return cmd, counts, nil
}

// Save marshals the Ranker state (N is static host configuration).
func (r *Ranker) Save(enc *words.Encoder) {
	enc.PutUint(r.phase)
	enc.PutUint(uint64(r.Rounds))
	enc.PutBool(r.doneCmd)
	enc.PutUints(r.Succ)
	enc.PutUints(r.Weight)
	enc.PutUints(r.Rank)
	enc.PutUints(r.pred)
	enc.PutUints(r.state)
	enc.PutUints(r.known)
	var flat []uint64
	for _, s := range r.subs {
		flat = append(flat, uint64(len(s)))
		flat = append(flat, s...)
	}
	enc.PutUints(flat)
}

// Load restores the Ranker; N must already be set by the host.
func (r *Ranker) Load(dec *words.Decoder) {
	r.phase = dec.Uint()
	r.Rounds = int(dec.Uint())
	r.doneCmd = dec.Bool()
	r.Succ = dec.Uints()
	r.Weight = dec.Uints()
	r.Rank = dec.Uints()
	r.pred = dec.Uints()
	r.state = dec.Uints()
	r.known = dec.Uints()
	flat := dec.Uints()
	r.subs = make([][]uint64, len(r.Succ))
	if len(flat) == 0 {
		return // saved before the first Step: no subscriptions yet
	}
	j := 0
	for i := range r.subs {
		n := int(flat[j])
		j++
		r.subs[i] = append([]uint64(nil), flat[j:j+n]...)
		j += n
	}
}

// SaveSize bounds Save's output for maxOwn owned nodes and maxSubs
// total subscription entries.
func (r *Ranker) SaveSize(maxOwn, maxSubs int) int {
	return 3 + 6*words.SizeUints(maxOwn) + words.SizeUints(maxOwn+2*maxSubs)
}
