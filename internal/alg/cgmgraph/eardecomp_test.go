package cgmgraph_test

import (
	"testing"
	"testing/quick"

	"embsp/internal/alg/cgmgraph"
	"embsp/internal/prng"
)

// cycleWithChords builds a biconnected graph: an n-cycle plus random
// chords.
func cycleWithChords(r *prng.Rand, n, chords int) [][2]int {
	edges := make([][2]int, 0, n+chords)
	for i := 0; i < n; i++ {
		edges = append(edges, [2]int{i, (i + 1) % n})
	}
	for len(edges) < n+chords {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			edges = append(edges, [2]int{a, b})
		}
	}
	return edges
}

// validateEars checks the structural definition of an ear
// decomposition: ears partition the edges; ear 0 is a cycle; every
// later ear is a path (or cycle closing at one vertex) whose
// endpoints lie on earlier ears and whose internal vertices are new.
func validateEars(t *testing.T, n int, edges [][2]int, ears []int) {
	t.Helper()
	nEars := 0
	for _, e := range ears {
		if e < 0 {
			t.Fatalf("edge with negative ear index")
		}
		if e+1 > nEars {
			nEars = e + 1
		}
	}
	if want := len(edges) - n + 1; nEars != want {
		t.Fatalf("%d ears, want m-n+1 = %d", nEars, want)
	}
	byEar := make([][][2]int, nEars)
	for ei, e := range ears {
		byEar[e] = append(byEar[e], edges[ei])
	}
	visited := make([]bool, n)
	for earIdx, earEdges := range byEar {
		if len(earEdges) == 0 {
			t.Fatalf("ear %d is empty", earIdx)
		}
		// Degree within the ear.
		deg := map[int]int{}
		for _, e := range earEdges {
			deg[e[0]]++
			deg[e[1]]++
		}
		var ends []int
		for vtx, d := range deg {
			switch d {
			case 1:
				ends = append(ends, vtx)
			case 2:
			default:
				t.Fatalf("ear %d: vertex %d has degree %d within the ear", earIdx, vtx, d)
			}
		}
		// Connectivity of the ear subgraph (it must be one path/cycle,
		// not several).
		adj := map[int][]int{}
		for _, e := range earEdges {
			adj[e[0]] = append(adj[e[0]], e[1])
			adj[e[1]] = append(adj[e[1]], e[0])
		}
		start := earEdges[0][0]
		if len(ends) > 0 {
			start = ends[0]
		}
		seen := map[int]bool{start: true}
		stack := []int{start}
		for len(stack) > 0 {
			u := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, w := range adj[u] {
				if !seen[w] {
					seen[w] = true
					stack = append(stack, w)
				}
			}
		}
		if len(seen) != len(deg) {
			t.Fatalf("ear %d is disconnected", earIdx)
		}
		if earIdx == 0 {
			if len(ends) != 0 {
				t.Fatalf("ear 0 is not a cycle (endpoints %v)", ends)
			}
			for vtx := range deg {
				visited[vtx] = true
			}
			continue
		}
		if len(ends) != 2 && len(ends) != 0 {
			t.Fatalf("ear %d has %d endpoints", earIdx, len(ends))
		}
		// Endpoints must already be visited; internal vertices must be
		// new, then become visited.
		isEnd := map[int]bool{}
		for _, e := range ends {
			isEnd[e] = true
			if !visited[e] {
				t.Fatalf("ear %d endpoint %d not on an earlier ear", earIdx, e)
			}
		}
		if len(ends) == 0 {
			// Degenerate closed ear: allowed in a (non-open) ear
			// decomposition only if it attaches at one visited vertex;
			// for our biconnected inputs with this labeling it should
			// not occur, so flag it.
			t.Fatalf("ear %d is a closed ear", earIdx)
		}
		for vtx := range deg {
			if isEnd[vtx] {
				continue
			}
			if visited[vtx] {
				t.Fatalf("ear %d internal vertex %d already on an earlier ear", earIdx, vtx)
			}
			visited[vtx] = true
		}
	}
	for vtx := 0; vtx < n; vtx++ {
		if !visited[vtx] {
			t.Fatalf("vertex %d not covered by any ear", vtx)
		}
	}
}

func TestEarDecomposition(t *testing.T) {
	r := prng.New(67)
	cases := []struct {
		name  string
		n     int
		edges [][2]int
	}{
		{"triangle", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}}},
		{"square+diag", 4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 2}}},
		{"k4", 4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}},
		{"cycle10", 10, cycleWithChords(r, 10, 0)},
		{"cycle12chords", 12, cycleWithChords(r, 12, 6)},
		{"cycle40chords", 40, cycleWithChords(r, 40, 25)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, v := range []int{1, 3} {
				ears, err := cgmgraph.EarDecomposition(c.n, c.edges, v, refRunner(71))
				if err != nil {
					t.Fatal(err)
				}
				validateEars(t, c.n, c.edges, ears)
			}
			ears, err := cgmgraph.EarDecomposition(c.n, c.edges, 3, emRunner(71))
			if err != nil {
				t.Fatal(err)
			}
			validateEars(t, c.n, c.edges, ears)
		})
	}
}

func TestEarDecompositionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		n := r.Intn(30) + 3
		edges := cycleWithChords(r, n, r.Intn(n))
		ears, err := cgmgraph.EarDecomposition(n, edges, r.Intn(5)+1, refRunner(seed))
		if err != nil {
			return false
		}
		// Structural spot checks without t: partition size and ear 0
		// is closed.
		nEars := 0
		for _, e := range ears {
			if e+1 > nEars {
				nEars = e + 1
			}
		}
		return nEars == len(edges)-n+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestEarDecompositionRejectsNonBiconnected(t *testing.T) {
	// A path has bridges: every tree edge uncovered.
	if _, err := cgmgraph.EarDecomposition(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 2}}, 2, refRunner(1)); err == nil {
		t.Error("graph with a bridge accepted")
	}
	if _, err := cgmgraph.EarDecomposition(2, [][2]int{{0, 1}}, 1, refRunner(1)); err == nil {
		t.Error("tree accepted")
	}
}
