package cgmgraph_test

import (
	"testing"
	"testing/quick"

	"embsp/internal/alg/cgmgraph"
	"embsp/internal/bsp"
	"embsp/internal/core"
	"embsp/internal/prng"
)

func bruteSubtreeAgg(n int, edges [][2]int, vals []uint64) (mins, maxs []uint64) {
	adj := make([][]int, n)
	for _, e := range edges {
		adj[e[0]] = append(adj[e[0]], e[1])
		adj[e[1]] = append(adj[e[1]], e[0])
	}
	mins = make([]uint64, n)
	maxs = make([]uint64, n)
	var dfs func(u, par int)
	dfs = func(u, par int) {
		mins[u], maxs[u] = vals[u], vals[u]
		for _, w := range adj[u] {
			if w != par {
				dfs(w, u)
				if mins[w] < mins[u] {
					mins[u] = mins[w]
				}
				if maxs[w] > maxs[u] {
					maxs[u] = maxs[w]
				}
			}
		}
	}
	dfs(0, -1)
	return mins, maxs
}

func TestTourAgg(t *testing.T) {
	r := prng.New(53)
	for _, n := range []int{1, 2, 3, 20, 100} {
		for _, v := range []int{1, 2, 4} {
			edges := randomTree(r, n)
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = r.Uint64() % 1000
			}
			p, err := cgmgraph.NewTourAgg(n, edges, vals, v)
			if err != nil {
				t.Fatal(err)
			}
			res, err := bsp.Run(p, bsp.RunOptions{Seed: 59, ValidateContexts: true})
			if err != nil {
				t.Fatal(err)
			}
			gotMin, gotMax := p.Output(res.VPs)
			wantMin, wantMax := bruteSubtreeAgg(n, edges, vals)
			for i := 0; i < n; i++ {
				if gotMin[i] != wantMin[i] || gotMax[i] != wantMax[i] {
					t.Fatalf("n=%d v=%d vertex %d: got (%d,%d), want (%d,%d)",
						n, v, i, gotMin[i], gotMax[i], wantMin[i], wantMax[i])
				}
			}
			// EM engine equivalence.
			cfg := core.MachineConfig{
				P: 1, M: 3*p.MaxContextWords() + 128, D: 2, B: 64, G: 100,
				Cost: bsp.CostParams{GUnit: 1, GPkt: 64, Pkt: 64, L: 10},
			}
			emRes, err := core.Run(p, cfg, core.Options{Seed: 59})
			if err != nil {
				t.Fatal(err)
			}
			emMin, emMax := p.Output(emRes.VPs)
			for i := 0; i < n; i++ {
				if emMin[i] != gotMin[i] || emMax[i] != gotMax[i] {
					t.Fatalf("EM run differs at vertex %d", i)
				}
			}
		}
	}
}

// bruteBiCC computes per-edge biconnected component labels with the
// classical DFS edge-stack algorithm; labels are canonicalized to the
// minimum edge index of each component.
func bruteBiCC(n int, edges [][2]int) []int {
	type half struct{ to, idx int }
	adj := make([][]half, n)
	for i, e := range edges {
		adj[e[0]] = append(adj[e[0]], half{e[1], i})
		adj[e[1]] = append(adj[e[1]], half{e[0], i})
	}
	labels := make([]int, len(edges))
	for i := range labels {
		labels[i] = -1
	}
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	var stack []int
	timer := 0
	var comp [][]int
	var dfs func(u, peidx int)
	dfs = func(u, peidx int) {
		disc[u] = timer
		low[u] = timer
		timer++
		for _, h := range adj[u] {
			if h.idx == peidx {
				continue
			}
			if disc[h.to] == -1 {
				stack = append(stack, h.idx)
				dfs(h.to, h.idx)
				if low[h.to] < low[u] {
					low[u] = low[h.to]
				}
				if low[h.to] >= disc[u] {
					// u is an articulation point (or root): pop a component.
					var c []int
					for {
						e := stack[len(stack)-1]
						stack = stack[:len(stack)-1]
						c = append(c, e)
						if e == h.idx {
							break
						}
					}
					comp = append(comp, c)
				}
			} else if disc[h.to] < disc[u] {
				stack = append(stack, h.idx)
				if disc[h.to] < low[u] {
					low[u] = disc[h.to]
				}
			}
		}
	}
	dfs(0, -1)
	for _, c := range comp {
		m := c[0]
		for _, e := range c {
			if e < m {
				m = e
			}
		}
		for _, e := range c {
			labels[e] = m
		}
	}
	return labels
}

// samePartition checks the two labelings induce the same grouping.
func samePartition(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	fwd := map[int]int{}
	rev := map[int]int{}
	for i := range a {
		if x, ok := fwd[a[i]]; ok && x != b[i] {
			return false
		}
		if x, ok := rev[b[i]]; ok && x != a[i] {
			return false
		}
		fwd[a[i]] = b[i]
		rev[b[i]] = a[i]
	}
	return true
}

// refRunner executes programs on the in-memory reference with context
// validation.
func refRunner(seed uint64) cgmgraph.Runner {
	return func(p bsp.Program) ([]bsp.VP, error) {
		res, err := bsp.Run(p, bsp.RunOptions{Seed: seed, ValidateContexts: true})
		if err != nil {
			return nil, err
		}
		return res.VPs, nil
	}
}

// emRunner executes programs on the sequential EM engine.
func emRunner(seed uint64) cgmgraph.Runner {
	return func(p bsp.Program) ([]bsp.VP, error) {
		cfg := core.MachineConfig{
			P: 1, M: 3*p.MaxContextWords() + 256, D: 2, B: 64, G: 100,
			Cost: bsp.CostParams{GUnit: 1, GPkt: 64, Pkt: 64, L: 10},
		}
		res, err := core.Run(p, cfg, core.Options{Seed: seed})
		if err != nil {
			return nil, err
		}
		return res.VPs, nil
	}
}

// connectedRandomGraph returns a random connected graph: a random
// tree plus extra random edges.
func connectedRandomGraph(r *prng.Rand, n, extra int) [][2]int {
	edges := randomTree(r, n)
	for i := 0; i < extra; i++ {
		a, b := r.Intn(n), r.Intn(n)
		if a != b {
			edges = append(edges, [2]int{a, b})
		}
	}
	return edges
}

func TestBiconnectivity(t *testing.T) {
	r := prng.New(61)
	cases := []struct {
		name  string
		n     int
		edges [][2]int
	}{
		{"singleEdge", 2, [][2]int{{0, 1}}},
		{"path", 6, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 5}}},
		{"triangle", 3, [][2]int{{0, 1}, {1, 2}, {2, 0}}},
		{"twoTriangles", 5, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}}},
		{"bridge", 6, [][2]int{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 5}, {5, 3}}},
		{"random20", 20, connectedRandomGraph(r, 20, 12)},
		{"random60", 60, connectedRandomGraph(r, 60, 40)},
		{"denseSmall", 8, connectedRandomGraph(r, 8, 20)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			want := bruteBiCC(c.n, c.edges)
			for _, v := range []int{1, 3} {
				got, err := cgmgraph.Biconnectivity(c.n, c.edges, v, refRunner(63))
				if err != nil {
					t.Fatal(err)
				}
				if !samePartition(got, want) {
					t.Fatalf("v=%d (ref): partition differs\n got: %v\nwant: %v", v, got, want)
				}
			}
			got, err := cgmgraph.Biconnectivity(c.n, c.edges, 3, emRunner(63))
			if err != nil {
				t.Fatal(err)
			}
			if !samePartition(got, want) {
				t.Fatalf("EM: partition differs\n got: %v\nwant: %v", got, want)
			}
		})
	}
}

func TestBiconnectivityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		n := r.Intn(40) + 2
		edges := connectedRandomGraph(r, n, r.Intn(2*n))
		got, err := cgmgraph.Biconnectivity(n, edges, r.Intn(5)+1, refRunner(seed))
		if err != nil {
			return false
		}
		return samePartition(got, bruteBiCC(n, edges))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBiconnectivityRejectsDisconnected(t *testing.T) {
	_, err := cgmgraph.Biconnectivity(4, [][2]int{{0, 1}, {2, 3}}, 2, refRunner(1))
	if err == nil {
		t.Error("disconnected graph accepted")
	}
}
