package cgmgraph

import (
	"fmt"
	"sort"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// CC computes connected components and a spanning forest of an
// undirected graph (the Table 1 "Connected components / Spanning
// forest" rows), in the hook-and-contract style of the CGM graph
// algorithms of Cáceres et al. [11] (Borůvka rounds with pointer
// jumping):
//
//   - every vertex keeps a parent pointer (initially itself);
//   - each round, every live edge (endpoints in different trees)
//     proposes its neighbour root to both roots; every root with a
//     smaller proposal hooks onto its minimum proposal (recording the
//     proposing edge in the spanning forest — ids strictly decrease,
//     so no cycles form);
//   - pointer-jumping rounds then re-converge all parents to roots,
//     with a count-and-broadcast termination protocol through VP 0;
//   - rounds repeat until no live edge remains.
//
// The final parent of a vertex is the minimum vertex id in its
// component, a canonical component label. Borůvka halves the root
// count per round, so rounds are O(log n); the measured λ is reported
// by the bench harness next to the paper's O(log p) bound.
type CC struct {
	v     int
	n     int
	edges [][2]int
}

// NewCC returns the program for a graph with n vertices and the given
// edge list on v VPs.
func NewCC(n int, edges [][2]int, v int) (*CC, error) {
	if v <= 0 {
		return nil, fmt.Errorf("cgmgraph: v = %d, want > 0", v)
	}
	for i, e := range edges {
		if e[0] < 0 || e[0] >= n || e[1] < 0 || e[1] >= n || e[0] == e[1] {
			return nil, fmt.Errorf("cgmgraph: edge %d = %v invalid for %d vertices", i, e, n)
		}
	}
	return &CC{v: v, n: n, edges: edges}, nil
}

func (p *CC) NumVPs() int { return p.v }

func (p *CC) maxVerts() int { return cgm.MaxPart(p.n, p.v) }
func (p *CC) maxEdges() int { return cgm.MaxPart(len(p.edges), p.v) }

func (p *CC) MaxContextWords() int {
	// Vertices (parent), edges (u, v, roots, alive), forest edge ids,
	// candidate buffers, phase words.
	return 16 + words.SizeUints(p.maxVerts()) + 5*words.SizeUints(p.maxEdges()) +
		words.SizeUints(len(p.edges)) + words.SizeUints(2*p.maxVerts())
}

func (p *CC) MaxCommWords() int {
	// Root queries/answers: 4 words per edge endpoint; candidates:
	// 4 words per edge copy; jump traffic: 3 words per vertex;
	// control: O(v).
	c := 8*p.maxEdges() + 8
	if j := 6*p.maxVerts() + 8; j > c {
		c = j
	}
	// A single vertex owner may answer queries for a high-degree
	// vertex: worst case all edges query one owner.
	if q := 8*len(p.edges) + 8; q > c {
		c = q
	}
	return c + 4*p.v + 32
}

// CC phases.
const (
	ccRootQ = iota // edges query endpoint roots
	ccRootA        // vertex owners answer (also: consume live cmd)
	ccHook         // edges send hook candidates + live count
	ccApply        // roots hook; VP 0 broadcasts live verdict
	ccJumpQ        // vertices query parent's parent
	ccJumpA        // owners answer; VP 0 broadcasts jump verdict
	ccJumpU        // apply jumps; send change counts
	ccDone
)

// CC message tags.
const (
	ccTagRootQ = iota
	ccTagRootA
	ccTagCand
	ccTagLive
	ccTagLiveCmd
	ccTagJumpQ
	ccTagJumpA
	ccTagJumpCnt
	ccTagJumpCmd
)

type ccVP struct {
	p     *CC
	phase uint64

	parent []uint64 // owned vertices' parents
	eu, ev []uint64 // owned edges' endpoints
	ru, rv []uint64 // owned edges' endpoint roots (this round)
	alive  []uint64
	forest []uint64 // recorded spanning-forest edge ids

	liveDone  bool // no live edges remained at the last count
	jumpStop  bool // VP 0 signalled jump convergence
	jumpFirst bool // first jump round of this Borůvka phase
	rounds    uint64
}

func (p *CC) NewVP(id int) bsp.VP {
	vlo, vhi := cgm.Dist(p.n, p.v, id)
	elo, ehi := cgm.Dist(len(p.edges), p.v, id)
	vp := &ccVP{
		p:      p,
		parent: make([]uint64, vhi-vlo),
		eu:     make([]uint64, ehi-elo),
		ev:     make([]uint64, ehi-elo),
		ru:     make([]uint64, ehi-elo),
		rv:     make([]uint64, ehi-elo),
		alive:  make([]uint64, ehi-elo),
	}
	for i := vlo; i < vhi; i++ {
		vp.parent[i-vlo] = uint64(i)
	}
	for i := elo; i < ehi; i++ {
		vp.eu[i-elo] = uint64(p.edges[i][0])
		vp.ev[i-elo] = uint64(p.edges[i][1])
		vp.alive[i-elo] = 1
	}
	return vp
}

func (vp *ccVP) vlo(env *bsp.Env) int {
	lo, _ := cgm.Dist(vp.p.n, env.NumVPs(), env.ID())
	return lo
}

func (vp *ccVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	v := env.NumVPs()
	vlo := vp.vlo(env)
	switch vp.phase {
	case ccRootQ:
		// Consume the jump verdict left over from the previous phase
		// (none on the first round).
		for _, m := range in {
			if m.Payload[0] != ccTagJumpCnt && m.Payload[0] != ccTagJumpCmd {
				return false, fmt.Errorf("cgmgraph: cc unexpected tag %d in root query", m.Payload[0])
			}
		}
		parts := make([][]uint64, v)
		for i := range vp.eu {
			if vp.alive[i] == 0 {
				continue
			}
			du := cgm.Owner(vp.p.n, v, int(vp.eu[i]))
			parts[du] = append(parts[du], ccTagRootQ, vp.eu[i], uint64(i), 0)
			dv := cgm.Owner(vp.p.n, v, int(vp.ev[i]))
			parts[dv] = append(parts[dv], ccTagRootQ, vp.ev[i], uint64(i), 1)
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(len(vp.eu)))
		vp.phase = ccRootA
		return false, nil

	case ccRootA:
		parts := make([][]uint64, v)
		for _, m := range in {
			p := m.Payload
			for i := 0; i+4 <= len(p); i += 4 {
				if p[i] != ccTagRootQ {
					return false, fmt.Errorf("cgmgraph: cc unexpected tag %d in root answer", p[i])
				}
				vertex := p[i+1]
				parts[m.Src] = append(parts[m.Src], ccTagRootA, p[i+2], p[i+3], vp.parent[int(vertex)-vlo])
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		vp.phase = ccHook
		return false, nil

	case ccHook:
		for _, m := range in {
			p := m.Payload
			for i := 0; i+4 <= len(p); i += 4 {
				if p[i] != ccTagRootA {
					return false, fmt.Errorf("cgmgraph: cc unexpected tag %d in hook", p[i])
				}
				slot, which, root := p[i+1], p[i+2], p[i+3]
				if which == 0 {
					vp.ru[slot] = root
				} else {
					vp.rv[slot] = root
				}
			}
		}
		parts := make([][]uint64, v)
		var live uint64
		for i := range vp.eu {
			if vp.alive[i] == 0 {
				continue
			}
			if vp.ru[i] == vp.rv[i] {
				vp.alive[i] = 0
				continue
			}
			live++
			elo, _ := cgm.Dist(len(vp.p.edges), v, env.ID())
			eid := uint64(elo + i)
			du := cgm.Owner(vp.p.n, v, int(vp.ru[i]))
			parts[du] = append(parts[du], ccTagCand, vp.ru[i], vp.rv[i], eid)
			dv := cgm.Owner(vp.p.n, v, int(vp.rv[i]))
			parts[dv] = append(parts[dv], ccTagCand, vp.rv[i], vp.ru[i], eid)
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Send(0, []uint64{ccTagLive, live})
		env.Charge(int64(len(vp.eu)))
		vp.phase = ccApply
		return false, nil

	case ccApply:
		vp.rounds++
		type cand struct{ root, other, eid uint64 }
		var cands []cand
		var liveTotal uint64
		for _, m := range in {
			p := m.Payload
			i := 0
			for i < len(p) {
				switch p[i] {
				case ccTagCand:
					cands = append(cands, cand{p[i+1], p[i+2], p[i+3]})
					i += 4
				case ccTagLive:
					liveTotal += p[i+1]
					i += 2
				default:
					return false, fmt.Errorf("cgmgraph: cc unexpected tag %d in apply", p[i])
				}
			}
		}
		// Hook each owned root to its minimum proposal when smaller.
		sort.Slice(cands, func(a, b int) bool {
			if cands[a].root != cands[b].root {
				return cands[a].root < cands[b].root
			}
			if cands[a].other != cands[b].other {
				return cands[a].other < cands[b].other
			}
			return cands[a].eid < cands[b].eid
		})
		for i := 0; i < len(cands); {
			j := i
			best := cands[i]
			for j < len(cands) && cands[j].root == best.root {
				j++
			}
			r := best.root
			if best.other < r && vp.parent[int(r)-vlo] == r {
				vp.parent[int(r)-vlo] = best.other
				vp.forest = append(vp.forest, best.eid)
			}
			i = j
		}
		env.Charge(int64(len(cands)) * 2)
		if env.ID() == 0 {
			verdict := uint64(0)
			if liveTotal == 0 {
				verdict = 1
			}
			for d := 0; d < v; d++ {
				env.Send(d, []uint64{ccTagLiveCmd, verdict})
			}
		}
		vp.jumpFirst = true
		vp.jumpStop = false
		vp.phase = ccJumpQ
		return false, nil

	case ccJumpQ:
		// Consume the live verdict (first jump round) and any jump
		// verdict from the previous jump round.
		for _, m := range in {
			switch m.Payload[0] {
			case ccTagLiveCmd:
				vp.liveDone = m.Payload[1] == 1
			case ccTagJumpCmd:
				vp.jumpStop = m.Payload[1] == 1
			case ccTagJumpCnt:
				// VP 0: counts from the previous jump round; decide.
				// (Handled below after summing.)
			default:
				return false, fmt.Errorf("cgmgraph: cc unexpected tag %d in jump query", m.Payload[0])
			}
		}
		if vp.jumpStop {
			// Parents converged. Either start the next Borůvka round
			// or finish. (Trailing zero-count reports in this inbox
			// were already validated above.)
			if vp.liveDone {
				vp.phase = ccDone
				return true, nil
			}
			vp.phase = ccRootQ
			return vp.Step(env, nil)
		}
		if env.ID() == 0 && !vp.jumpFirst {
			var changed uint64
			for _, m := range in {
				if m.Payload[0] == ccTagJumpCnt {
					changed += m.Payload[1]
				}
			}
			verdict := uint64(0)
			if changed == 0 {
				verdict = 1
			}
			for d := 0; d < v; d++ {
				env.Send(d, []uint64{ccTagJumpCmd, verdict})
			}
		}
		vp.jumpFirst = false
		parts := make([][]uint64, v)
		for i, par := range vp.parent {
			if int(par) == vlo+i {
				continue
			}
			d := cgm.Owner(vp.p.n, v, int(par))
			parts[d] = append(parts[d], ccTagJumpQ, par, uint64(vlo+i))
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(len(vp.parent)))
		vp.phase = ccJumpA
		return false, nil

	case ccJumpA:
		parts := make([][]uint64, v)
		for _, m := range in {
			p := m.Payload
			for i := 0; i < len(p); {
				switch p[i] {
				case ccTagJumpQ:
					parts[m.Src] = append(parts[m.Src], ccTagJumpA, p[i+2], vp.parent[int(p[i+1])-vlo])
					i += 3
				case ccTagJumpCmd:
					vp.jumpStop = m.Payload[i+1] == 1
					i += 2
				default:
					return false, fmt.Errorf("cgmgraph: cc unexpected tag %d in jump answer", p[i])
				}
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		vp.phase = ccJumpU
		return false, nil

	case ccJumpU:
		var changed uint64
		for _, m := range in {
			p := m.Payload
			for i := 0; i+3 <= len(p); i += 3 {
				if p[i] != ccTagJumpA {
					return false, fmt.Errorf("cgmgraph: cc unexpected tag %d in jump update", p[i])
				}
				x, newPar := p[i+1], p[i+2]
				if vp.parent[int(x)-vlo] != newPar {
					vp.parent[int(x)-vlo] = newPar
					changed++
				}
			}
		}
		env.Send(0, []uint64{ccTagJumpCnt, changed})
		env.Charge(int64(len(vp.parent)))
		vp.phase = ccJumpQ
		return false, nil

	default:
		return false, fmt.Errorf("cgmgraph: cc VP stepped after completion")
	}
}

func (vp *ccVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	enc.PutBool(vp.liveDone)
	enc.PutBool(vp.jumpStop)
	enc.PutBool(vp.jumpFirst)
	enc.PutUint(vp.rounds)
	enc.PutUints(vp.parent)
	enc.PutUints(vp.eu)
	enc.PutUints(vp.ev)
	enc.PutUints(vp.ru)
	enc.PutUints(vp.rv)
	enc.PutUints(vp.alive)
	enc.PutUints(vp.forest)
}

func (vp *ccVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	vp.liveDone = dec.Bool()
	vp.jumpStop = dec.Bool()
	vp.jumpFirst = dec.Bool()
	vp.rounds = dec.Uint()
	vp.parent = dec.Uints()
	vp.eu = dec.Uints()
	vp.ev = dec.Uints()
	vp.ru = dec.Uints()
	vp.rv = dec.Uints()
	vp.alive = dec.Uints()
	vp.forest = dec.Uints()
}

// Output returns the component label (minimum vertex id in the
// component) for every vertex.
func (p *CC) Output(vps []bsp.VP) []int {
	out := make([]int, 0, p.n)
	for _, vp := range vps {
		for _, par := range vp.(*ccVP).parent {
			out = append(out, int(par))
		}
	}
	return out
}

// Forest returns the sorted spanning-forest edge indices.
func (p *CC) Forest(vps []bsp.VP) []int {
	var out []int
	for _, vp := range vps {
		for _, e := range vp.(*ccVP).forest {
			out = append(out, int(e))
		}
	}
	sort.Ints(out)
	return out
}

// Rounds returns the number of Borůvka rounds used.
func (p *CC) Rounds(vps []bsp.VP) int {
	r := uint64(0)
	for _, vp := range vps {
		if x := vp.(*ccVP).rounds; x > r {
			r = x
		}
	}
	return int(r)
}
