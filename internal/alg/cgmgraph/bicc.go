package cgmgraph

import (
	"fmt"

	"embsp/internal/bsp"
)

// Runner executes a program on the caller's engine of choice (the
// in-memory reference, the sequential EM engine, or the parallel EM
// engine) and returns the final virtual-processor states. It lets
// multi-phase drivers like Biconnectivity compose the Table 1
// programs while remaining engine-agnostic.
type Runner func(p bsp.Program) ([]bsp.VP, error)

// Biconnectivity computes the biconnected components of a connected
// graph (the Table 1 "Biconnected components" row) with the
// Tarjan–Vishkin reduction, composed from the package's programs:
//
//  1. CC finds a spanning tree;
//  2. EulerTour roots it at vertex 0 (first occurrences, subtree
//     sizes — an ancestor-consistent interval numbering);
//  3. TourAgg computes low(v)/high(v): the extremes, over v's
//     subtree, of the tour numbers reachable by one non-tree edge;
//  4. an auxiliary graph on the tree edges is formed (two
//     Tarjan–Vishkin rules) and CC labels its components, which are
//     exactly the biconnected components.
//
// Each phase is a full CGM program executed through the supplied
// Runner; the O(n+m) glue between phases (building per-vertex values
// and the auxiliary edge list) runs in core, a documented deviation —
// a fully external driver would route the glue through the sort
// program.
//
// The result assigns every edge of the input the minimum input-edge
// index of its biconnected component.
func Biconnectivity(n int, edges [][2]int, v int, run Runner) ([]int, error) {
	if n < 1 {
		return nil, fmt.Errorf("cgmgraph: n = %d, want >= 1", n)
	}
	if len(edges) == 0 {
		return nil, nil
	}

	// Phase 1: spanning tree.
	ccProg, err := NewCC(n, edges, v)
	if err != nil {
		return nil, err
	}
	ccVPs, err := run(ccProg)
	if err != nil {
		return nil, fmt.Errorf("cgmgraph: biconnectivity spanning tree: %w", err)
	}
	labels := ccProg.Output(ccVPs)
	for _, l := range labels {
		if l != labels[0] {
			return nil, fmt.Errorf("cgmgraph: biconnectivity requires a connected graph")
		}
	}
	forest := ccProg.Forest(ccVPs)
	isTree := make([]bool, len(edges))
	treeEdges := make([][2]int, 0, n-1)
	for _, ei := range forest {
		isTree[ei] = true
		treeEdges = append(treeEdges, edges[ei])
	}

	// Phase 2: root the tree.
	euProg, err := NewEulerTour(n, treeEdges, v)
	if err != nil {
		return nil, err
	}
	euVPs, err := run(euProg)
	if err != nil {
		return nil, fmt.Errorf("cgmgraph: biconnectivity rooting: %w", err)
	}
	info := euProg.Output(euVPs)
	first := info.First
	size := info.Size
	parent := info.Parent

	// inSub reports whether w lies in v's subtree (interval test on
	// the tour numbering).
	inSub := func(w, vtx int) bool {
		return first[vtx] <= first[w] && first[w] <= first[vtx]+2*size[vtx]-2
	}

	// Glue: per-vertex direct reach through one non-tree edge.
	lowVal := make([]uint64, n)
	highVal := make([]uint64, n)
	for i := 0; i < n; i++ {
		lowVal[i] = uint64(first[i])
		highVal[i] = uint64(first[i])
	}
	for ei, e := range edges {
		if isTree[ei] {
			continue
		}
		a, b := e[0], e[1]
		for _, pair := range [2][2]int{{a, b}, {b, a}} {
			x, y := pair[0], pair[1]
			if uint64(first[y]) < lowVal[x] {
				lowVal[x] = uint64(first[y])
			}
			if uint64(first[y]) > highVal[x] {
				highVal[x] = uint64(first[y])
			}
		}
	}

	// Phase 3: subtree extremes (low and high in one program, since
	// TourAgg aggregates min and max together; low uses lowVal's min,
	// high uses highVal's max — run twice to keep the value arrays
	// independent).
	lowProg, err := NewTourAgg(n, treeEdges, lowVal, v)
	if err != nil {
		return nil, err
	}
	lowVPs, err := run(lowProg)
	if err != nil {
		return nil, fmt.Errorf("cgmgraph: biconnectivity low pass: %w", err)
	}
	low, _ := lowProg.Output(lowVPs)

	highProg, err := NewTourAgg(n, treeEdges, highVal, v)
	if err != nil {
		return nil, err
	}
	highVPs, err := run(highProg)
	if err != nil {
		return nil, fmt.Errorf("cgmgraph: biconnectivity high pass: %w", err)
	}
	_, high := highProg.Output(highVPs)

	// Glue: the Tarjan–Vishkin auxiliary graph over tree edges. Tree
	// edge (parent(x), x) is represented by its child endpoint x, so
	// the auxiliary vertices are 1..n-1 in child-relabeled space; we
	// keep original vertex ids and skip the root.
	var aux [][2]int
	for ei, e := range edges {
		if isTree[ei] {
			continue
		}
		a, b := e[0], e[1]
		if !inSub(a, b) && !inSub(b, a) {
			// Rule 1: unrelated endpoints join their tree edges.
			aux = append(aux, [2]int{a, b})
		}
	}
	for x := 0; x < n; x++ {
		u := parent[x]
		if u <= 0 {
			continue // x is the root or u is the root: no tree edge above u
		}
		if int(low[x]) < first[u] || int(high[x]) > first[u]+2*size[u]-2 {
			// Rule 2: some non-tree edge escapes u's subtree from
			// within x's subtree: (u,x) and (p(u),u) are in one
			// biconnected component.
			aux = append(aux, [2]int{x, u})
		}
	}

	// Phase 4: components of the auxiliary graph (on vertices; vertex
	// x stands for tree edge (parent(x), x), the root is isolated).
	auxProg, err := NewCC(n, aux, v)
	if err != nil {
		return nil, err
	}
	auxVPs, err := run(auxProg)
	if err != nil {
		return nil, fmt.Errorf("cgmgraph: biconnectivity aux components: %w", err)
	}
	comp := auxProg.Output(auxVPs)

	// Assign component labels to edges: a tree edge takes its child
	// endpoint's component; a non-tree edge takes its deeper (larger
	// tour number) endpoint's component. Canonicalize to the minimum
	// edge index per component.
	rawLabels := make([]int, len(edges))
	for ei, e := range edges {
		a, b := e[0], e[1]
		var rep int
		if isTree[ei] {
			if parent[a] == b {
				rep = a
			} else {
				rep = b
			}
		} else {
			rep = a
			if first[b] > first[a] {
				rep = b
			}
		}
		rawLabels[ei] = comp[rep]
	}
	canon := make(map[int]int)
	out := make([]int, len(edges))
	for ei, l := range rawLabels {
		if _, ok := canon[l]; !ok {
			canon[l] = ei
		}
		out[ei] = canon[l]
	}
	return out, nil
}
