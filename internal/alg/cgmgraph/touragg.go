package cgmgraph

import (
	"fmt"
	"math/bits"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// TourAgg computes, for every vertex of a tree rooted at 0, the
// minimum and maximum of a per-vertex value over the vertex's entire
// subtree. It is the Euler-tour reduction used by the Tarjan–Vishkin
// biconnectivity algorithm to compute low(v)/high(v): a subtree is a
// contiguous interval of the rooted tour vertex sequence, so subtree
// aggregation is a range min/max query answered by a distributed
// sparse table over the value-by-tour-position array (one exchange
// superstep per doubling level, as in the LCA program).
type TourAgg struct {
	v     int
	n     int
	vals  []uint64
	euler *EulerTour
}

// NewTourAgg returns the program for the tree (rooted at 0) and the
// per-vertex values.
func NewTourAgg(n int, edges [][2]int, vals []uint64, v int) (*TourAgg, error) {
	euler, err := NewEulerTour(n, edges, v)
	if err != nil {
		return nil, err
	}
	if len(vals) != n {
		return nil, fmt.Errorf("cgmgraph: %d values for %d vertices", len(vals), n)
	}
	return &TourAgg{v: v, n: n, vals: vals, euler: euler}, nil
}

func (p *TourAgg) NumVPs() int { return p.v }

func (p *TourAgg) tourLen() int  { return 2*p.n - 1 }
func (p *TourAgg) maxLevel() int { return bits.Len(uint(p.tourLen())) - 1 }

func (p *TourAgg) MaxContextWords() int {
	maxIdx := cgm.MaxPart(p.tourLen(), p.v)
	maxV := cgm.MaxPart(p.n, p.v)
	return 16 + p.euler.MaxContextWords() +
		(p.maxLevel()+1)*words.SizeUints(2*maxIdx) + 2*words.SizeUints(maxV)
}

func (p *TourAgg) MaxCommWords() int {
	maxIdx := cgm.MaxPart(p.tourLen(), p.v)
	c := p.euler.MaxCommWords()
	if push := 3*maxIdx + 2*p.v + 16; push > c {
		c = push
	}
	if q := 10*p.n + 2*p.v + 16; q > c {
		c = q
	}
	return c
}

func (p *TourAgg) NewVP(id int) bsp.VP {
	return &aggVP{p: p, euler: p.euler.NewVP(id).(*eulerVP)}
}

// TourAgg phases after the Euler tour.
const (
	agEuler  = iota
	agBuild  // collect value-by-position entries; push for level 1
	agLevel  // one superstep per sparse-table level
	agLook   // issue per-vertex RMQ lookups
	agAnswer // sparse-table owners answer lookups
	agPick   // combine lookup replies; halt
)

type aggVP struct {
	p     *TourAgg
	euler *eulerVP
	phase uint64
	level uint64

	st       [][]uint64 // st[ℓ]: (min, max) per owned tour index
	mins     []uint64   // per owned vertex, valid when done
	maxs     []uint64
	expected []uint64 // lookups outstanding per owned vertex (2 or 1)
}

func (vp *aggVP) idxRange(env *bsp.Env) (int, int) {
	return cgm.Dist(vp.p.tourLen(), env.NumVPs(), env.ID())
}

func (vp *aggVP) pushLevel(env *bsp.Env, lvl int) {
	L := vp.p.tourLen()
	shift := 1 << lvl
	lo, hi := vp.idxRange(env)
	parts := make([][]uint64, env.NumVPs())
	row := vp.st[lvl]
	for i := lo; i < hi; i++ {
		target := i - shift
		if target < 0 {
			continue
		}
		d := cgm.Owner(L, vp.p.v, target)
		parts[d] = append(parts[d], uint64(i), row[(i-lo)*2], row[(i-lo)*2+1])
	}
	for d, part := range parts {
		if len(part) > 0 {
			env.Send(d, part)
		}
	}
	env.Charge(int64(hi - lo))
}

func (vp *aggVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	v := env.NumVPs()
	L := vp.p.tourLen()
	switch vp.phase {
	case agEuler:
		done, err := vp.euler.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		// Emit (tour index, value of head) per owned arc.
		parts := make([][]uint64, v)
		for i := range vp.euler.pos {
			idx := vp.euler.pos[i] + 1
			val := vp.p.vals[vp.euler.head[i]]
			d := cgm.Owner(L, v, int(idx))
			parts[d] = append(parts[d], idx, val)
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(len(vp.euler.pos)))
		vp.phase = agBuild
		return false, nil

	case agBuild:
		lo, hi := vp.idxRange(env)
		row := make([]uint64, 2*(hi-lo))
		for _, m := range in {
			p := m.Payload
			for i := 0; i+2 <= len(p); i += 2 {
				slot := int(p[i]) - lo
				row[slot*2] = p[i+1]
				row[slot*2+1] = p[i+1]
			}
		}
		if lo == 0 && hi > 0 {
			row[0], row[1] = vp.p.vals[0], vp.p.vals[0]
		}
		vp.st = [][]uint64{row}
		if vp.p.maxLevel() == 0 {
			vp.phase = agLook
			return vp.Step(env, nil)
		}
		vp.pushLevel(env, 0)
		vp.level = 1
		vp.phase = agLevel
		return false, nil

	case agLevel:
		lo, hi := vp.idxRange(env)
		lvl := int(vp.level)
		shift := 1 << (lvl - 1)
		remote := make(map[int][2]uint64)
		for _, m := range in {
			p := m.Payload
			for i := 0; i+3 <= len(p); i += 3 {
				remote[int(p[i])] = [2]uint64{p[i+1], p[i+2]}
			}
		}
		prev := vp.st[lvl-1]
		row := make([]uint64, 2*(hi-lo))
		for i := lo; i < hi; i++ {
			mn, mx := prev[(i-lo)*2], prev[(i-lo)*2+1]
			if i+(1<<lvl) <= L {
				src := i + shift
				var mn2, mx2 uint64
				if src >= lo && src < hi {
					mn2, mx2 = prev[(src-lo)*2], prev[(src-lo)*2+1]
				} else if e, ok := remote[src]; ok {
					mn2, mx2 = e[0], e[1]
				} else {
					return false, fmt.Errorf("cgmgraph: touragg level %d missing source %d", lvl, src)
				}
				if mn2 < mn {
					mn = mn2
				}
				if mx2 > mx {
					mx = mx2
				}
			}
			row[(i-lo)*2], row[(i-lo)*2+1] = mn, mx
		}
		vp.st = append(vp.st, row)
		env.Charge(int64(hi - lo))
		if lvl < vp.p.maxLevel() {
			vp.pushLevel(env, lvl)
			vp.level++
			return false, nil
		}
		vp.phase = agLook
		return vp.Step(env, nil)

	case agLook:
		// Issue the two RMQ lookups per owned vertex over its subtree
		// interval [first, first + 2·size - 2].
		vlo, vhi := vp.euler.vertRange(env)
		vp.mins = make([]uint64, vhi-vlo)
		vp.maxs = make([]uint64, vhi-vlo)
		vp.expected = make([]uint64, vhi-vlo)
		for i := range vp.mins {
			vp.mins[i] = ^uint64(0)
		}
		parts := make([][]uint64, v)
		for i := 0; i < vhi-vlo; i++ {
			lo := vp.euler.first[i]
			hi := lo + 2*vp.euler.size[i] - 2
			span := int(hi - lo + 1)
			lvl := bits.Len(uint(span)) - 1
			idxs := []uint64{lo, hi - uint64(int(1)<<lvl) + 1}
			if idxs[0] == idxs[1] {
				idxs = idxs[:1]
			}
			vp.expected[i] = uint64(len(idxs))
			for _, idx := range idxs {
				d := cgm.Owner(L, v, int(idx))
				parts[d] = append(parts[d], uint64(vlo+i), uint64(lvl), idx)
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(vhi - vlo))
		vp.phase = agAnswer
		return false, nil

	case agAnswer:
		lo, _ := vp.idxRange(env)
		parts := make([][]uint64, v)
		for _, m := range in {
			p := m.Payload
			for i := 0; i+3 <= len(p); i += 3 {
				lvl := int(p[i+1])
				idx := int(p[i+2])
				row := vp.st[lvl]
				parts[m.Src] = append(parts[m.Src], p[i], row[(idx-lo)*2], row[(idx-lo)*2+1])
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		vp.phase = agPick
		return false, nil

	case agPick:
		vlo, _ := vp.euler.vertRange(env)
		for _, m := range in {
			p := m.Payload
			for i := 0; i+3 <= len(p); i += 3 {
				j := int(p[i]) - vlo
				if p[i+1] < vp.mins[j] {
					vp.mins[j] = p[i+1]
				}
				if p[i+2] > vp.maxs[j] {
					vp.maxs[j] = p[i+2]
				}
				vp.expected[j]--
			}
		}
		for j, e := range vp.expected {
			if e != 0 {
				return false, fmt.Errorf("cgmgraph: touragg vertex %d missing %d lookup replies", vlo+j, e)
			}
		}
		return true, nil

	default:
		return false, fmt.Errorf("cgmgraph: touragg VP stepped after completion")
	}
}

func (vp *aggVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	enc.PutUint(vp.level)
	vp.euler.Save(enc)
	enc.PutUint(uint64(len(vp.st)))
	for _, row := range vp.st {
		enc.PutUints(row)
	}
	enc.PutUints(vp.mins)
	enc.PutUints(vp.maxs)
	enc.PutUints(vp.expected)
}

func (vp *aggVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	vp.level = dec.Uint()
	vp.euler.Load(dec)
	nlv := int(dec.Uint())
	vp.st = make([][]uint64, nlv)
	for i := range vp.st {
		vp.st[i] = dec.Uints()
	}
	vp.mins = dec.Uints()
	vp.maxs = dec.Uints()
	vp.expected = dec.Uints()
}

// Output returns per-vertex subtree minima and maxima.
func (p *TourAgg) Output(vps []bsp.VP) (mins, maxs []uint64) {
	for _, vp := range vps {
		mins = append(mins, vp.(*aggVP).mins...)
		maxs = append(maxs, vp.(*aggVP).maxs...)
	}
	return mins, maxs
}
