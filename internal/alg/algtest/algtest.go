// Package algtest provides the shared test harness for the CGM
// algorithm library: every algorithm is run on the in-memory
// reference runner (with context validation), on a sequential EM
// machine and on a parallel EM machine, and all three outputs must
// agree exactly. This is the fidelity contract of the paper's
// simulation — Theorem 1 transports the algorithm unchanged.
package algtest

import (
	"testing"

	"embsp/internal/bsp"
	"embsp/internal/core"
)

// Machines returns the EM machine shapes used in algorithm tests: a
// sequential 2-disk machine and a 3-processor 2-disk machine, both
// with memory sized to force multiple groups when possible.
func Machines(p bsp.Program) []core.MachineConfig {
	mu := p.MaxContextWords()
	b := 64
	m := 3*mu + 2*b
	if m < 2*b {
		m = 2 * b
	}
	return []core.MachineConfig{
		{P: 1, M: m, D: 2, B: b, G: 100, Cost: bsp.CostParams{GUnit: 1, GPkt: 16, Pkt: b, L: 10}},
		{P: 3, M: m, D: 2, B: b, G: 100, Cost: bsp.CostParams{GUnit: 1, GPkt: 16, Pkt: b, L: 10}},
	}
}

// RunRef runs the program on the in-memory reference runner with
// context validation enabled (so Save/Load fidelity is always
// exercised) and returns the result.
func RunRef(t *testing.T, p bsp.Program, seed uint64) *bsp.Result {
	t.Helper()
	res, err := bsp.Run(p, bsp.RunOptions{Seed: seed, PktSize: 64, ValidateContexts: true})
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return res
}

// RunAll runs the program on the reference runner and on the EM
// machines, checks that extract yields identical words everywhere,
// and returns the reference result.
func RunAll(t *testing.T, p bsp.Program, seed uint64, extract func(vps []bsp.VP) []uint64) *bsp.Result {
	t.Helper()
	ref := RunRef(t, p, seed)
	want := extract(ref.VPs)
	variants := []struct {
		name string
		cfg  core.MachineConfig
		opts core.Options
	}{}
	for _, cfg := range Machines(p) {
		variants = append(variants, struct {
			name string
			cfg  core.MachineConfig
			opts core.Options
		}{name: "randomized", cfg: cfg, opts: core.Options{Seed: seed}})
	}
	// The deterministic (CGM) placement variant, the NoRouting
	// ablation, and a durable file-backed run with the group pipeline
	// forced on (I/O workers, prefetch, write-behind) — the physical
	// schedule must be invisible in every output word.
	seqCfg := Machines(p)[0]
	variants = append(variants,
		struct {
			name string
			cfg  core.MachineConfig
			opts core.Options
		}{name: "deterministic", cfg: seqCfg, opts: core.Options{Seed: seed, Deterministic: true}},
		struct {
			name string
			cfg  core.MachineConfig
			opts core.Options
		}{name: "norouting", cfg: seqCfg, opts: core.Options{Seed: seed, NoRouting: true}},
		struct {
			name string
			cfg  core.MachineConfig
			opts core.Options
		}{name: "pipelined", cfg: seqCfg, opts: core.Options{Seed: seed, StateDir: t.TempDir(), Pipeline: 1}},
	)
	for _, vr := range variants {
		res, err := core.Run(p, vr.cfg, vr.opts)
		if err != nil {
			t.Fatalf("EM run (P=%d, %s): %v", vr.cfg.P, vr.name, err)
		}
		got := extract(res.VPs)
		if len(got) != len(want) {
			t.Fatalf("EM run (P=%d, %s): output has %d words, reference %d", vr.cfg.P, vr.name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("EM run (P=%d, %s): output word %d = %d, reference %d", vr.cfg.P, vr.name, i, got[i], want[i])
			}
		}
		if res.Costs.Supersteps != ref.Costs.Supersteps {
			t.Errorf("EM run (P=%d, %s): λ = %d, reference %d", vr.cfg.P, vr.name, res.Costs.Supersteps, ref.Costs.Supersteps)
		}
	}
	return ref
}
