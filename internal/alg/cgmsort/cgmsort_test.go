package cgmsort_test

import (
	"sort"
	"testing"
	"testing/quick"

	"embsp/internal/alg/algtest"
	"embsp/internal/alg/cgm"
	"embsp/internal/alg/cgmsort"
	"embsp/internal/bsp"
	"embsp/internal/prng"
)

func randWords(r *prng.Rand, n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = r.Uint64()
	}
	return out
}

func TestSortMatchesStdlib(t *testing.T) {
	r := prng.New(1)
	for _, n := range []int{0, 1, 2, 17, 100, 257} {
		for _, v := range []int{1, 2, 4, 7} {
			data := randWords(r, n)
			p, err := cgmsort.NewSort(data, 1, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 5, func(vps []bsp.VP) []uint64 { return p.Output(vps) })
			got := p.Output(res.VPs)
			want := append([]uint64(nil), data...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d v=%d: word %d = %d, want %d", n, v, i, got[i], want[i])
				}
			}
			if res.Costs.Supersteps != cgm.SorterSupersteps {
				t.Errorf("n=%d v=%d: λ = %d, want %d", n, v, res.Costs.Supersteps, cgm.SorterSupersteps)
			}
		}
	}
}

func TestSortWideRecords(t *testing.T) {
	// 3-word records: sort by (key, tiebreak, payload) lexicographic.
	r := prng.New(3)
	const n, w, v = 120, 3, 5
	data := make([]uint64, n*w)
	for i := 0; i < n; i++ {
		data[i*w] = uint64(r.Intn(16)) // many duplicate keys
		data[i*w+1] = uint64(i)        // tiebreak
		data[i*w+2] = r.Uint64()       // payload
	}
	p, err := cgmsort.NewSort(data, w, v)
	if err != nil {
		t.Fatal(err)
	}
	res := algtest.RunAll(t, p, 7, func(vps []bsp.VP) []uint64 { return p.Output(vps) })
	got := p.Output(res.VPs)
	if !cgm.RecordsSorted(got, w) {
		t.Fatal("output not sorted")
	}
	// Same multiset: compare against a locally sorted copy.
	want := append([]uint64(nil), data...)
	cgm.SortRecords(want, w)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("word %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestSortBalance(t *testing.T) {
	// PSRS with distinct records: no VP ends with more than ~2·⌈n/v⌉
	// records.
	r := prng.New(9)
	const n, v = 4000, 8
	data := make([]uint64, 2*n)
	for i := 0; i < n; i++ {
		data[2*i] = r.Uint64()
		data[2*i+1] = uint64(i)
	}
	p, err := cgmsort.NewSort(data, 2, v)
	if err != nil {
		t.Fatal(err)
	}
	res := algtest.RunRef(t, p, 2)
	limit := 2*cgm.MaxPart(n, v) + v
	for id, sz := range p.PartSizes(res.VPs) {
		if sz > limit {
			t.Errorf("VP %d holds %d records, exceeding PSRS bound %d", id, sz, limit)
		}
	}
}

func TestSortProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		n := r.Intn(200)
		v := r.Intn(8) + 1
		data := randWords(r, n)
		p, err := cgmsort.NewSort(data, 1, v)
		if err != nil {
			return false
		}
		res, err := bsp.Run(p, bsp.RunOptions{Seed: seed, ValidateContexts: true})
		if err != nil {
			return false
		}
		got := p.Output(res.VPs)
		want := append([]uint64(nil), data...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSortAdversarialInputs(t *testing.T) {
	const n, v = 600, 6
	cases := map[string]func(i int) uint64{
		"sorted":   func(i int) uint64 { return uint64(i) },
		"reversed": func(i int) uint64 { return uint64(n - i) },
		"allEqual": func(i int) uint64 { return 42 },
		"sawtooth": func(i int) uint64 { return uint64(i % 7) },
		"twoVals":  func(i int) uint64 { return uint64(i & 1) },
	}
	for name, gen := range cases {
		t.Run(name, func(t *testing.T) {
			data := make([]uint64, n)
			for i := range data {
				data[i] = gen(i)
			}
			p, err := cgmsort.NewSort(data, 1, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 3, func(vps []bsp.VP) []uint64 { return p.Output(vps) })
			got := p.Output(res.VPs)
			want := append([]uint64(nil), data...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("word %d = %d, want %d", i, got[i], want[i])
				}
			}
			// The internal index tiebreak guarantees the PSRS balance
			// even for duplicate-heavy inputs.
			limit := 2*cgm.MaxPart(n, v) + v
			for id, sz := range p.PartSizes(res.VPs) {
				if sz > limit {
					t.Errorf("VP %d holds %d records, exceeding PSRS bound %d", id, sz, limit)
				}
			}
		})
	}
}

func TestSortRejectsBadInput(t *testing.T) {
	if _, err := cgmsort.NewSort(make([]uint64, 5), 2, 2); err == nil {
		t.Error("odd data length accepted for width 2")
	}
	if _, err := cgmsort.NewSort(nil, 0, 2); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := cgmsort.NewSort(nil, 1, 0); err == nil {
		t.Error("v=0 accepted")
	}
}

func TestPermute(t *testing.T) {
	r := prng.New(4)
	for _, n := range []int{0, 1, 13, 100} {
		for _, v := range []int{1, 3, 6} {
			vals := randWords(r, n)
			targets := r.Perm(n)
			p, err := cgmsort.NewPermute(vals, targets, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 11, func(vps []bsp.VP) []uint64 { return p.Output(vps) })
			got := p.Output(res.VPs)
			want := make([]uint64, n)
			for i, tgt := range targets {
				want[tgt] = vals[i]
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d v=%d: out[%d] = %d, want %d", n, v, i, got[i], want[i])
				}
			}
			if res.Costs.Supersteps != 2 {
				t.Errorf("n=%d v=%d: λ = %d, want 2", n, v, res.Costs.Supersteps)
			}
		}
	}
}

func TestPermuteRejectsNonPermutation(t *testing.T) {
	if _, err := cgmsort.NewPermute([]uint64{1, 2}, []int{0, 0}, 1); err == nil {
		t.Error("duplicate targets accepted")
	}
	if _, err := cgmsort.NewPermute([]uint64{1, 2}, []int{0, 2}, 1); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, err := cgmsort.NewPermute([]uint64{1, 2}, []int{0}, 1); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestTranspose(t *testing.T) {
	r := prng.New(8)
	for _, dims := range [][2]int{{1, 1}, {3, 5}, {8, 8}, {16, 4}} {
		rows, cols := dims[0], dims[1]
		m := randWords(r, rows*cols)
		p, err := cgmsort.NewTranspose(m, rows, cols, 4)
		if err != nil {
			t.Fatal(err)
		}
		res := algtest.RunAll(t, p, 13, func(vps []bsp.VP) []uint64 { return p.Output(vps) })
		got := p.Output(res.VPs)
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				if got[j*rows+i] != m[i*cols+j] {
					t.Fatalf("%dx%d: transposed[%d][%d] = %d, want %d", rows, cols, j, i, got[j*rows+i], m[i*cols+j])
				}
			}
		}
	}
}

func TestTransposeRejectsBadShape(t *testing.T) {
	if _, err := cgmsort.NewTranspose(make([]uint64, 5), 2, 3, 1); err == nil {
		t.Error("wrong element count accepted")
	}
}
