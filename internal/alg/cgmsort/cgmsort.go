// Package cgmsort implements the Group A workloads of the paper's
// Table 1 as CGM programs: sorting, permutation and matrix transpose.
// Each is a bsp.Program with λ = O(1) communication rounds; run
// through internal/core they become the corresponding parallel EM
// algorithms with I/O time Õ(G·n/(p·B·D)).
package cgmsort

import (
	"fmt"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// SortProgram sorts n flat records of width W lexicographically with
// a distributed sample sort (λ = 4 supersteps). Records are
// uniquified internally with a trailing input-index word, which makes
// the sort stable and guarantees the PSRS 2·⌈n/v⌉ output balance (and
// hence the declared γ) even for duplicate-heavy inputs.
type SortProgram struct {
	v    int
	w    int // caller-visible record width
	iw   int // internal width: w + 1 (index tiebreak)
	data []uint64
	n    int // number of records
}

// NewSort returns a program sorting data (flat records of w words
// each) on v virtual processors.
func NewSort(data []uint64, w, v int) (*SortProgram, error) {
	if w <= 0 || len(data)%w != 0 {
		return nil, fmt.Errorf("cgmsort: data length %d not a multiple of record width %d", len(data), w)
	}
	if v <= 0 {
		return nil, fmt.Errorf("cgmsort: v = %d, want > 0", v)
	}
	return &SortProgram{v: v, w: w, iw: w + 1, data: data, n: len(data) / w}, nil
}

func (p *SortProgram) NumVPs() int { return p.v }

// MaxContextWords budgets for the PSRS output guarantee (≤ 2·⌈n/v⌉
// records per VP, guaranteed by the index tiebreak) with headroom.
func (p *SortProgram) MaxContextWords() int {
	maxRecs := 3*cgm.MaxPart(p.n, p.v) + p.v
	s := &cgm.Sorter{W: p.iw}
	return 2 + s.SaveSize(maxRecs, p.v)
}

func (p *SortProgram) MaxCommWords() int {
	// Phase 2 routes all local records; VP 0 additionally receives
	// v·v samples in phase 1 and broadcasts v-1 splitters to v VPs.
	return 3*cgm.MaxPart(p.n, p.v)*p.iw + p.v*(p.v*p.iw+1) + p.v*((p.v-1)*p.iw+1) + 16
}

func (p *SortProgram) NewVP(id int) bsp.VP {
	lo, hi := cgm.Dist(p.n, p.v, id)
	local := make([]uint64, 0, (hi-lo)*p.iw)
	for i := lo; i < hi; i++ {
		local = append(local, p.data[i*p.w:(i+1)*p.w]...)
		local = append(local, uint64(i))
	}
	return &sortVP{sorter: cgm.Sorter{W: p.iw, Data: local}}
}

type sortVP struct {
	sorter cgm.Sorter
}

func (vp *sortVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	return vp.sorter.Step(env, in)
}

func (vp *sortVP) Save(enc *words.Encoder) { vp.sorter.Save(enc) }
func (vp *sortVP) Load(dec *words.Decoder) { vp.sorter.Load(dec) }

// Output concatenates the per-VP sorted slices into the global sorted
// sequence, stripping the internal index tiebreak.
func (p *SortProgram) Output(vps []bsp.VP) []uint64 {
	out := make([]uint64, 0, p.n*p.w)
	for _, vp := range vps {
		data := vp.(*sortVP).sorter.Data
		for i := 0; i+p.iw <= len(data); i += p.iw {
			out = append(out, data[i:i+p.w]...)
		}
	}
	return out
}

// PartSizes returns the number of records each VP holds after the
// sort — the PSRS balance observable.
func (p *SortProgram) PartSizes(vps []bsp.VP) []int {
	out := make([]int, len(vps))
	for i, vp := range vps {
		out[i] = len(vp.(*sortVP).sorter.Data) / p.iw
	}
	return out
}

// PermuteProgram routes n values to caller-specified target positions
// (λ = 1 communication round: one all-to-all of (position, value)
// pairs). It implements both Table 1's "Permutation" row and, with a
// computed target function, "Matrix transpose".
type PermuteProgram struct {
	v      int
	n      int
	vals   []uint64
	target func(i int) int
}

// NewPermute returns a program computing out[targets[i]] = vals[i].
// targets must be a permutation of [0, n).
func NewPermute(vals []uint64, targets []int, v int) (*PermuteProgram, error) {
	if len(targets) != len(vals) {
		return nil, fmt.Errorf("cgmsort: %d values but %d targets", len(vals), len(targets))
	}
	if err := checkPermutation(targets); err != nil {
		return nil, err
	}
	return &PermuteProgram{v: v, n: len(vals), vals: vals, target: func(i int) int { return targets[i] }}, nil
}

func checkPermutation(t []int) error {
	seen := make([]bool, len(t))
	for _, x := range t {
		if x < 0 || x >= len(t) || seen[x] {
			return fmt.Errorf("cgmsort: targets are not a permutation")
		}
		seen[x] = true
	}
	return nil
}

// NewTranspose returns a program transposing an r×c matrix given in
// row-major order into c×r row-major order.
func NewTranspose(matrix []uint64, r, c, v int) (*PermuteProgram, error) {
	if len(matrix) != r*c {
		return nil, fmt.Errorf("cgmsort: matrix has %d elements, want %d×%d=%d", len(matrix), r, c, r*c)
	}
	return &PermuteProgram{
		v: v, n: r * c, vals: matrix,
		target: func(i int) int { return (i%c)*r + i/c },
	}, nil
}

func (p *PermuteProgram) NumVPs() int { return p.v }

func (p *PermuteProgram) MaxContextWords() int {
	// Local input values, arrival buffer of one slot per owned
	// position, plus phase word.
	return 4 + 2*words.SizeUints(2*cgm.MaxPart(p.n, p.v))
}

func (p *PermuteProgram) MaxCommWords() int {
	// One round: every VP sends and receives ⌈n/v⌉ (position, value)
	// pairs, split across at most v messages.
	return 2*cgm.MaxPart(p.n, p.v)*2 + 2*p.v + 8
}

func (p *PermuteProgram) NewVP(id int) bsp.VP {
	lo, hi := cgm.Dist(p.n, p.v, id)
	local := make([]uint64, hi-lo)
	copy(local, p.vals[lo:hi])
	return &permuteVP{p: p, id: id, in: local}
}

type permuteVP struct {
	p     *PermuteProgram
	id    int
	phase uint64
	in    []uint64
	out   []uint64
}

func (vp *permuteVP) Step(env *bsp.Env, msgs []bsp.Message) (bool, error) {
	switch vp.phase {
	case 0:
		lo, _ := cgm.Dist(vp.p.n, vp.p.v, vp.id)
		// Batch (position, value) pairs per destination VP: the
		// coarse-grained h-relation.
		parts := make([][]uint64, vp.p.v)
		for i, val := range vp.in {
			pos := vp.p.target(lo + i)
			d := cgm.Owner(vp.p.n, vp.p.v, pos)
			parts[d] = append(parts[d], uint64(pos), val)
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(len(vp.in)))
		vp.in = nil
		vp.phase = 1
		return false, nil
	case 1:
		lo, hi := cgm.Dist(vp.p.n, vp.p.v, vp.id)
		vp.out = make([]uint64, hi-lo)
		for _, m := range msgs {
			for i := 0; i+1 < len(m.Payload); i += 2 {
				pos := int(m.Payload[i])
				if pos < lo || pos >= hi {
					return false, fmt.Errorf("cgmsort: position %d routed to VP %d owning [%d,%d)", pos, vp.id, lo, hi)
				}
				vp.out[pos-lo] = m.Payload[i+1]
			}
		}
		env.Charge(int64(hi - lo))
		vp.phase = 2
		return true, nil
	default:
		return false, fmt.Errorf("cgmsort: permute VP stepped after completion")
	}
}

func (vp *permuteVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	enc.PutUints(vp.in)
	enc.PutUints(vp.out)
}

func (vp *permuteVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	vp.in = dec.Uints()
	vp.out = dec.Uints()
}

// Output concatenates the per-VP permuted slices.
func (p *PermuteProgram) Output(vps []bsp.VP) []uint64 {
	out := make([]uint64, 0, p.n)
	for _, vp := range vps {
		out = append(out, vp.(*permuteVP).out...)
	}
	return out
}
