package cgm_test

import (
	"sort"
	"testing"
	"testing/quick"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/prng"
	"embsp/internal/words"
)

// sortHost is a minimal host program driving an embedded Sorter.
type sortHost struct {
	v    int
	w    int
	data []uint64
}

func (p *sortHost) NumVPs() int          { return p.v }
func (p *sortHost) MaxContextWords() int { return 2 + len(p.data) + (p.v+1)*p.w + 64 }
func (p *sortHost) MaxCommWords() int {
	return 3*len(p.data) + p.v*(p.v*p.w+1) + p.v*((p.v-1)*p.w+1) + 16
}
func (p *sortHost) NewVP(id int) bsp.VP {
	lo, hi := cgm.Dist(len(p.data)/p.w, p.v, id)
	local := append([]uint64(nil), p.data[lo*p.w:hi*p.w]...)
	return &sortHostVP{s: cgm.Sorter{W: p.w, Data: local}}
}

type sortHostVP struct {
	s cgm.Sorter
}

func (vp *sortHostVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	return vp.s.Step(env, in)
}
func (vp *sortHostVP) Save(enc *words.Encoder) { vp.s.Save(enc) }
func (vp *sortHostVP) Load(dec *words.Decoder) { vp.s.Load(dec) }

func runSortHost(t *testing.T, data []uint64, w, v int, seed uint64) []uint64 {
	t.Helper()
	p := &sortHost{v: v, w: w, data: data}
	res, err := bsp.Run(p, bsp.RunOptions{Seed: seed, ValidateContexts: true})
	if err != nil {
		t.Fatal(err)
	}
	var out []uint64
	for _, vp := range res.VPs {
		out = append(out, vp.(*sortHostVP).s.Data...)
	}
	return out
}

func TestSorterDirect(t *testing.T) {
	r := prng.New(1)
	for _, n := range []int{0, 1, 5, 64, 301} {
		for _, v := range []int{1, 2, 7} {
			data := make([]uint64, n)
			for i := range data {
				data[i] = r.Uint64() % 64 // duplicates stress splitters
			}
			got := runSortHost(t, data, 1, v, uint64(n*10+v))
			want := append([]uint64(nil), data...)
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			if len(got) != len(want) {
				t.Fatalf("n=%d v=%d: %d records out, want %d", n, v, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d v=%d: record %d = %d, want %d", n, v, i, got[i], want[i])
				}
			}
		}
	}
}

func TestSorterSupersteps(t *testing.T) {
	p := &sortHost{v: 4, w: 1, data: []uint64{5, 2, 8, 1, 9, 3}}
	res, err := bsp.Run(p, bsp.RunOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Costs.Supersteps != cgm.SorterSupersteps {
		t.Errorf("λ = %d, want %d", res.Costs.Supersteps, cgm.SorterSupersteps)
	}
}

func TestSorterSaveSizeHolds(t *testing.T) {
	// SaveSize must bound the actual encoding for the stated record
	// budget.
	s := &cgm.Sorter{W: 3, Data: make([]uint64, 3*50)}
	enc := words.NewEncoder(nil)
	s.Save(enc)
	if enc.Len() > s.SaveSize(50, 8) {
		t.Errorf("Save wrote %d words, SaveSize(50,8) = %d", enc.Len(), s.SaveSize(50, 8))
	}
}

// scanHost drives an embedded Scan.
type scanHost struct {
	v    int
	vals []uint64
}

func (p *scanHost) NumVPs() int          { return p.v }
func (p *scanHost) MaxContextWords() int { return cgm.ScanSaveWords + 2 }
func (p *scanHost) MaxCommWords() int    { return 3*p.v + 8 }
func (p *scanHost) NewVP(id int) bsp.VP {
	return &scanHostVP{s: cgm.Scan{Value: p.vals[id]}}
}

type scanHostVP struct {
	s cgm.Scan
}

func (vp *scanHostVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	return vp.s.Step(env, in)
}
func (vp *scanHostVP) Save(enc *words.Encoder) { vp.s.Save(enc) }
func (vp *scanHostVP) Load(dec *words.Decoder) { vp.s.Load(dec) }

func TestScanDirect(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		v := r.Intn(12) + 1
		vals := make([]uint64, v)
		for i := range vals {
			vals[i] = uint64(r.Intn(1000))
		}
		p := &scanHost{v: v, vals: vals}
		res, err := bsp.Run(p, bsp.RunOptions{Seed: seed, ValidateContexts: true})
		if err != nil {
			return false
		}
		if res.Costs.Supersteps != cgm.ScanSupersteps {
			return false
		}
		var run, total uint64
		for _, x := range vals {
			total += x
		}
		for i, vp := range res.VPs {
			sc := vp.(*scanHostVP).s
			if sc.Prefix != run || sc.Total != total {
				return false
			}
			run += vals[i]
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
