package cgm

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"embsp/internal/prng"
)

func TestDistCoversAll(t *testing.T) {
	f := func(nRaw, vRaw uint16) bool {
		n := int(nRaw % 500)
		v := int(vRaw%16) + 1
		covered := 0
		prevHi := 0
		for id := 0; id < v; id++ {
			lo, hi := Dist(n, v, id)
			if lo != prevHi || hi < lo {
				return false
			}
			for i := lo; i < hi; i++ {
				if Owner(n, v, i) != id {
					return false
				}
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == n && prevHi == n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistBalance(t *testing.T) {
	n, v := 103, 10
	for id := 0; id < v; id++ {
		if sz := DistSize(n, v, id); sz > MaxPart(n, v) {
			t.Errorf("VP %d owns %d > ⌈n/v⌉ = %d", id, sz, MaxPart(n, v))
		}
	}
}

func TestEncodeFloatOrderPreserving(t *testing.T) {
	vals := []float64{math.Inf(-1), -1e300, -3.5, -1, -1e-300, 0, 1e-300, 0.5, 2, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		if EncodeFloat(vals[i-1]) >= EncodeFloat(vals[i]) {
			t.Errorf("order broken between %v and %v", vals[i-1], vals[i])
		}
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		if a < b {
			return EncodeFloat(a) < EncodeFloat(b)
		}
		if a > b {
			return EncodeFloat(a) > EncodeFloat(b)
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEncodeFloatRoundTrip(t *testing.T) {
	f := func(a float64) bool {
		if math.IsNaN(a) {
			return true
		}
		got := DecodeFloat(EncodeFloat(a))
		return got == a || (a == 0 && got == 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSortRecords(t *testing.T) {
	r := prng.New(6)
	for _, w := range []int{1, 2, 4} {
		n := 200
		data := make([]uint64, n*w)
		for i := range data {
			data[i] = uint64(r.Intn(8)) // duplicates stress ties
		}
		want := toPairs(data, w)
		SortRecords(data, w)
		if !RecordsSorted(data, w) {
			t.Fatalf("w=%d: not sorted", w)
		}
		got := toPairs(data, w)
		sort.Slice(want, func(i, j int) bool { return lessSlice(want[i], want[j]) })
		for i := range want {
			for j := range want[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("w=%d: record %d differs", w, i)
				}
			}
		}
	}
}

func toPairs(data []uint64, w int) [][]uint64 {
	out := make([][]uint64, len(data)/w)
	for i := range out {
		out[i] = append([]uint64(nil), data[i*w:(i+1)*w]...)
	}
	return out
}

func lessSlice(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

func TestLowerBound(t *testing.T) {
	data := []uint64{1, 0, 3, 1, 3, 2, 7, 0} // 2-word records, sorted
	if i := LowerBound(data, 2, []uint64{3, 0}); i != 1 {
		t.Errorf("LowerBound(3,0) = %d, want 1", i)
	}
	if i := LowerBound(data, 2, []uint64{3, 2}); i != 2 {
		t.Errorf("LowerBound(3,2) = %d, want 2", i)
	}
	if i := LowerBound(data, 2, []uint64{9, 9}); i != 4 {
		t.Errorf("LowerBound(9,9) = %d, want 4", i)
	}
	if i := LowerBound(data, 2, []uint64{0, 0}); i != 0 {
		t.Errorf("LowerBound(0,0) = %d, want 0", i)
	}
}
