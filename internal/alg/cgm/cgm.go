// Package cgm provides shared building blocks for writing CGM
// (Coarse Grained Multicomputer) algorithms as bsp.Programs: block
// data distribution, order-preserving key encodings, and reusable
// distributed sub-machines (sample sort, prefix sums) that a host
// virtual processor embeds in its context and steps through its own
// supersteps.
//
// A CGM algorithm (Section 2.2 of the paper) alternates computation
// rounds and h-relations with h ≤ n/p. The algorithms built from this
// package (internal/alg/cgmsort, cgmgeom, cgmgraph) are the Table 1
// workloads; running them through internal/core turns them into the
// paper's parallel EM algorithms.
package cgm

import (
	"math"
	"sort"
)

// Dist returns the block-distribution range [lo, hi) of items owned
// by VP id when n items are spread over v virtual processors: VP i
// owns items [i·⌈n/v⌉, (i+1)·⌈n/v⌉).
func Dist(n, v, id int) (lo, hi int) {
	per := (n + v - 1) / v
	lo = id * per
	hi = lo + per
	if lo > n {
		lo = n
	}
	if hi > n {
		hi = n
	}
	return lo, hi
}

// DistSize returns the number of items VP id owns under Dist.
func DistSize(n, v, id int) int {
	lo, hi := Dist(n, v, id)
	return hi - lo
}

// MaxPart returns ⌈n/v⌉, the largest per-VP share under Dist.
func MaxPart(n, v int) int { return (n + v - 1) / v }

// Owner returns the VP owning item index i under Dist.
func Owner(n, v, i int) int { return i / MaxPart(n, v) }

// EncodeFloat maps a float64 to a uint64 such that the natural uint64
// order matches the float order (total order with -Inf < ... < +Inf;
// NaNs are not supported). Used to sort geometric coordinates with the
// integer-keyed Sorter.
func EncodeFloat(f float64) uint64 {
	u := math.Float64bits(f)
	if u&(1<<63) != 0 {
		return ^u
	}
	return u | 1<<63
}

// DecodeFloat inverts EncodeFloat.
func DecodeFloat(u uint64) float64 {
	if u&(1<<63) != 0 {
		return math.Float64frombits(u &^ (1 << 63))
	}
	return math.Float64frombits(^u)
}

// Records are flat []uint64 slices holding fixed-width tuples. recLess
// compares two W-word records lexicographically; SortRecords sorts a
// flat record slice in place.

func recLess(a, b []uint64) bool {
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// SortRecords sorts the flat record slice data (length a multiple of
// w) lexicographically by its w-word records.
func SortRecords(data []uint64, w int) {
	n := len(data) / w
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(i, j int) bool {
		return recLess(data[idx[i]*w:idx[i]*w+w], data[idx[j]*w:idx[j]*w+w])
	})
	out := make([]uint64, len(data))
	for i, j := range idx {
		copy(out[i*w:(i+1)*w], data[j*w:(j+1)*w])
	}
	copy(data, out)
}

// RecordsSorted reports whether data is sorted by its w-word records.
func RecordsSorted(data []uint64, w int) bool {
	n := len(data) / w
	for i := 1; i < n; i++ {
		if recLess(data[i*w:(i+1)*w], data[(i-1)*w:i*w]) {
			return false
		}
	}
	return true
}

// LowerBound returns the first record index i in the sorted flat
// record slice data such that data[i] >= key (lexicographically).
func LowerBound(data []uint64, w int, key []uint64) int {
	n := len(data) / w
	return sort.Search(n, func(i int) bool {
		return !recLess(data[i*w:(i+1)*w], key)
	})
}
