package cgm

import (
	"fmt"

	"embsp/internal/bsp"
	"embsp/internal/words"
)

// Scan is an embeddable exclusive prefix sum over one uint64 value
// per VP (3 supersteps): after completion, Prefix is the sum of the
// Values of all lower-id VPs and Total the global sum. Like Sorter,
// every VP must drive its Scan in the same supersteps and the Scan
// owns the inbox during its phases.
type Scan struct {
	// Value is the VP's contribution; set before the first Step.
	Value uint64
	// Prefix and Total are valid after Step returns done.
	Prefix uint64
	Total  uint64

	phase int
}

// ScanSupersteps is the number of supersteps a Scan consumes.
const ScanSupersteps = 3

// Active reports whether the Scan still needs Step calls.
func (s *Scan) Active() bool { return s.phase <= 2 }

// Step advances the scan by one superstep, returning true on
// completion.
func (s *Scan) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	switch s.phase {
	case 0:
		env.Send(0, []uint64{s.Value})
	case 1:
		if env.ID() == 0 {
			v := env.NumVPs()
			vals := make([]uint64, v)
			for _, m := range in {
				vals[m.Src] = m.Payload[0]
			}
			var run uint64
			for i := 0; i < v; i++ {
				run += vals[i]
			}
			total := run
			run = 0
			for i := 0; i < v; i++ {
				env.Send(i, []uint64{run, total})
				run += vals[i]
			}
			env.Charge(int64(v))
		}
	case 2:
		if len(in) != 1 {
			return false, fmt.Errorf("cgm: scan expected prefix message, got %d", len(in))
		}
		s.Prefix = in[0].Payload[0]
		s.Total = in[0].Payload[1]
		s.phase++
		return true, nil
	default:
		return false, fmt.Errorf("cgm: scan stepped after completion (phase %d)", s.phase)
	}
	s.phase++
	return false, nil
}

// Save marshals the Scan state.
func (s *Scan) Save(enc *words.Encoder) {
	enc.PutUint(uint64(s.phase))
	enc.PutUint(s.Value)
	enc.PutUint(s.Prefix)
	enc.PutUint(s.Total)
}

// Load restores the Scan state.
func (s *Scan) Load(dec *words.Decoder) {
	s.phase = int(dec.Uint())
	s.Value = dec.Uint()
	s.Prefix = dec.Uint()
	s.Total = dec.Uint()
}

// ScanSaveWords is the fixed Save size of a Scan.
const ScanSaveWords = 4
