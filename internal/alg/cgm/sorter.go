package cgm

import (
	"fmt"
	"math/bits"
	"sort"

	"embsp/internal/bsp"
	"embsp/internal/words"
)

// Sorter is an embeddable distributed sample sort (PSRS — parallel
// sorting by regular sampling; Goodrich-style communication-efficient
// sorting shape with λ = O(1) communication rounds).
//
// A host VP embeds a Sorter in its context, fills Data with its local
// flat records (W words each, compared lexicographically), and then
// forwards its Step/Save/Load calls to the Sorter until Step reports
// done. All VPs must drive their Sorters in the same supersteps, and
// the Sorter owns the inbox during its phases. After completion, Data
// holds the VP's slice of the globally sorted sequence: concatenating
// Data over VP ids yields the total order.
//
// Records should be made distinct (e.g. by appending an index word):
// the lexicographic order is then total, which both balances the
// output (the PSRS 2n/v guarantee) and makes results deterministic.
//
// Phases (one superstep each, λ = 4 supersteps):
//
//	0: local sort; send v regular samples to VP 0
//	1: VP 0 sorts the samples, broadcasts v-1 splitters
//	2: partition local records by splitter; route to destinations
//	3: sort received records; done
type Sorter struct {
	// W is the record width in words (≥ 1).
	W int
	// Data holds the VP's local flat records (len divisible by W).
	Data []uint64

	phase     int
	splitters []uint64
}

// Active reports whether the Sorter still needs Step calls.
func (s *Sorter) Active() bool { return s.phase <= 3 }

// Supersteps returns the number of supersteps a Sorter consumes.
const SorterSupersteps = 4

// chargeSort charges a comparison-sort's work for n records.
func chargeSort(env *bsp.Env, n int) {
	if n > 1 {
		env.Charge(int64(n) * int64(bits.Len(uint(n))))
	}
}

// Step advances the sort by one superstep. It consumes the inbox and
// returns true when the sort is complete (after which Data is the
// sorted slice and the Sorter must not be stepped again).
func (s *Sorter) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	v := env.NumVPs()
	switch s.phase {
	case 0:
		SortRecords(s.Data, s.W)
		chargeSort(env, len(s.Data)/s.W)
		n := len(s.Data) / s.W
		cnt := v
		if n < cnt {
			cnt = n
		}
		samples := make([]uint64, 0, cnt*s.W)
		for j := 0; j < cnt; j++ {
			i := j * n / cnt
			samples = append(samples, s.Data[i*s.W:(i+1)*s.W]...)
		}
		if len(samples) > 0 {
			env.Send(0, samples)
		}
	case 1:
		if env.ID() == 0 {
			var samples []uint64
			for _, m := range in {
				samples = append(samples, m.Payload...)
			}
			SortRecords(samples, s.W)
			chargeSort(env, len(samples)/s.W)
			m := len(samples) / s.W
			spl := make([]uint64, 0, (v-1)*s.W)
			for i := 1; i < v; i++ {
				j := i * m / v
				if j >= m {
					j = m - 1
				}
				if j < 0 {
					continue
				}
				spl = append(spl, samples[j*s.W:(j+1)*s.W]...)
			}
			for d := 0; d < v; d++ {
				env.Send(d, spl)
			}
		}
	case 2:
		if len(in) != 1 {
			return false, fmt.Errorf("cgm: sorter expected splitters, got %d messages", len(in))
		}
		s.splitters = in[0].Payload
		ns := len(s.splitters) / s.W
		n := len(s.Data) / s.W
		// Destination of a record: the number of splitters <= it.
		// Records are sorted, so destinations are non-decreasing and
		// each VP receives one contiguous run.
		start := 0
		for d := 0; d < v && start < n; d++ {
			end := n
			if d < ns {
				// First record index with record > splitter d.
				key := s.splitters[d*s.W : (d+1)*s.W]
				end = start + sort.Search(n-start, func(i int) bool {
					r := s.Data[(start+i)*s.W : (start+i+1)*s.W]
					return recLess(key, r)
				})
			}
			if end > start {
				env.Send(d, s.Data[start*s.W:end*s.W])
			}
			start = end
		}
		env.Charge(int64(n))
		s.Data = nil
	case 3:
		var recv []uint64
		for _, m := range in {
			recv = append(recv, m.Payload...)
		}
		SortRecords(recv, s.W)
		chargeSort(env, len(recv)/s.W)
		s.Data = recv
		s.phase++
		return true, nil
	default:
		return false, fmt.Errorf("cgm: sorter stepped after completion (phase %d)", s.phase)
	}
	s.phase++
	return false, nil
}

// Save marshals the Sorter state (W is static host configuration and
// is not saved).
func (s *Sorter) Save(enc *words.Encoder) {
	enc.PutUint(uint64(s.phase))
	enc.PutUints(s.Data)
	enc.PutUints(s.splitters)
}

// Load restores the Sorter state; W must already be set by the host.
func (s *Sorter) Load(dec *words.Decoder) {
	s.phase = int(dec.Uint())
	s.Data = dec.Uints()
	s.splitters = dec.Uints()
}

// SaveSize returns an upper bound on Save's output given a bound
// maxRecs on the number of local records.
func (s *Sorter) SaveSize(maxRecs, v int) int {
	return 1 + words.SizeUints(maxRecs*s.W) + words.SizeUints((v-1)*s.W)
}
