package cgmgeom

import (
	"fmt"
	"math"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// NextElement solves batched next-element search by vertical ray
// shooting (the Table 1 "Next element search on line segments" row,
// the core of trapezoidal decomposition and batched planar point
// location): given n horizontal segments and q query points, find for
// every query the segment directly above it — the segment of minimal
// y > qy whose x-extent covers qx — and, dually, the segment directly
// below it. Together the two answers locate each query point's
// trapezoid in the decomposition induced by the segments.
//
// CGM algorithm (λ = O(1) rounds): balanced x-slabs from the sorted
// segment-endpoint and query keys (Slabber), segments replicated into
// overlapped slabs, queries routed to their slab, a local scan per
// slab, and answers routed back to the query owners.
type NextElement struct {
	v       int
	segs    []HSegment
	queries []Point
}

// HSegment is a horizontal segment [X1, X2] at height Y.
type HSegment struct {
	X1, X2, Y float64
}

// NewNextElement returns the program for segments and queries on v
// VPs.
func NewNextElement(segs []HSegment, queries []Point, v int) (*NextElement, error) {
	if v <= 0 {
		return nil, fmt.Errorf("cgmgeom: v = %d, want > 0", v)
	}
	for i, s := range segs {
		if s.X1 > s.X2 {
			return nil, fmt.Errorf("cgmgeom: segment %d inverted", i)
		}
	}
	return &NextElement{v: v, segs: segs, queries: queries}, nil
}

func (p *NextElement) NumVPs() int { return p.v }

func (p *NextElement) maxOwn() int {
	a := cgm.MaxPart(len(p.segs), p.v)
	b := cgm.MaxPart(len(p.queries), p.v)
	return a + b
}

func (p *NextElement) MaxContextWords() int {
	maxKeys := 2*cgm.MaxPart(len(p.segs), p.v) + cgm.MaxPart(len(p.queries), p.v)
	sl := Slabber{}
	n, q := len(p.segs), len(p.queries)
	return 6 + sl.SaveSize(3*maxKeys+p.v, p.v) +
		words.SizeUints(4*cgm.MaxPart(n, p.v)) + // own segments
		words.SizeUints(3*cgm.MaxPart(q, p.v)) + // own queries
		words.SizeUints(4*n+3*q) + // worst-case slab load
		words.SizeUints(2*cgm.MaxPart(q, p.v)) // answers
}

func (p *NextElement) MaxCommWords() int {
	n, q := len(p.segs), len(p.queries)
	maxKeys := 2*cgm.MaxPart(n, p.v) + cgm.MaxPart(q, p.v)
	sortComm := 3*maxKeys + p.v*(p.v+1) + p.v*p.v
	replicate := (4*cgm.MaxPart(n, p.v)+3*cgm.MaxPart(q, p.v))*p.v + p.v
	recv := 4*n + 3*q + p.v
	answers := 3*q + p.v
	m := sortComm
	for _, c := range []int{replicate, recv, answers} {
		if c > m {
			m = c
		}
	}
	return m + 16
}

func (p *NextElement) NewVP(id int) bsp.VP {
	slo, shi := cgm.Dist(len(p.segs), p.v, id)
	qlo, qhi := cgm.Dist(len(p.queries), p.v, id)
	keys := make([]uint64, 0, 2*(shi-slo)+(qhi-qlo))
	segs := make([]uint64, 0, 4*(shi-slo))
	qs := make([]uint64, 0, 3*(qhi-qlo))
	for i := slo; i < shi; i++ {
		s := p.segs[i]
		keys = append(keys, cgm.EncodeFloat(s.X1), cgm.EncodeFloat(s.X2))
		segs = append(segs, math.Float64bits(s.X1), math.Float64bits(s.X2), math.Float64bits(s.Y), uint64(i))
	}
	for i := qlo; i < qhi; i++ {
		pt := p.queries[i]
		keys = append(keys, cgm.EncodeFloat(pt.X))
		qs = append(qs, math.Float64bits(pt.X), math.Float64bits(pt.Y), uint64(i))
	}
	return &nextVP{p: p, slab: Slabber{Data: keys}, segs: segs, queries: qs}
}

const (
	nextPhaseSlab    = 0
	nextPhaseScan    = 1
	nextPhaseCollect = 2
)

type nextVP struct {
	p       *NextElement
	phase   uint64
	slab    Slabber
	segs    []uint64 // own, then slab segments: (x1, x2, y, idx)
	queries []uint64 // own, then slab queries: (x, y, idx)
	answers []uint64 // owned (queryIdx, segIdx) pairs
}

// segTag distinguishes segment from query payloads in the
// distribution superstep.
const (
	tagSegs    = 0
	tagQueries = 1
)

func (vp *nextVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	switch vp.phase {
	case nextPhaseSlab:
		done, err := vp.slab.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		v := env.NumVPs()
		segParts := make([][]uint64, v)
		for i := 0; i+4 <= len(vp.segs); i += 4 {
			x1 := math.Float64frombits(vp.segs[i])
			x2 := math.Float64frombits(vp.segs[i+1])
			lo, hi := SlabRange(vp.slab.Bounds, cgm.EncodeFloat(x1), cgm.EncodeFloat(x2))
			for s := lo; s <= hi; s++ {
				segParts[s] = append(segParts[s], vp.segs[i:i+4]...)
			}
		}
		qParts := make([][]uint64, v)
		for i := 0; i+3 <= len(vp.queries); i += 3 {
			x := math.Float64frombits(vp.queries[i])
			s := SlabOf(vp.slab.Bounds, cgm.EncodeFloat(x))
			qParts[s] = append(qParts[s], vp.queries[i:i+3]...)
		}
		for d := 0; d < v; d++ {
			if len(segParts[d]) > 0 {
				env.Send(d, append([]uint64{tagSegs}, segParts[d]...))
			}
			if len(qParts[d]) > 0 {
				env.Send(d, append([]uint64{tagQueries}, qParts[d]...))
			}
		}
		env.Charge(int64(len(vp.segs) + len(vp.queries)))
		vp.segs, vp.queries = nil, nil
		vp.phase = nextPhaseScan
		return false, nil
	case nextPhaseScan:
		var segs, queries []uint64
		for _, m := range in {
			switch m.Payload[0] {
			case tagSegs:
				segs = append(segs, m.Payload[1:]...)
			case tagQueries:
				queries = append(queries, m.Payload[1:]...)
			default:
				return false, fmt.Errorf("cgmgeom: unknown payload tag %d", m.Payload[0])
			}
		}
		parts := make([][]uint64, env.NumVPs())
		for i := 0; i+3 <= len(queries); i += 3 {
			qx := math.Float64frombits(queries[i])
			qy := math.Float64frombits(queries[i+1])
			qidx := queries[i+2]
			aboveIdx := ^uint64(0)
			aboveY := math.Inf(1)
			belowIdx := ^uint64(0)
			belowY := math.Inf(-1)
			for j := 0; j+4 <= len(segs); j += 4 {
				x1 := math.Float64frombits(segs[j])
				x2 := math.Float64frombits(segs[j+1])
				y := math.Float64frombits(segs[j+2])
				idx := segs[j+3]
				if x1 <= qx && qx <= x2 {
					if y > qy && (y < aboveY || (y == aboveY && idx < aboveIdx)) {
						aboveY, aboveIdx = y, idx
					}
					if y < qy && (y > belowY || (y == belowY && idx < belowIdx)) {
						belowY, belowIdx = y, idx
					}
				}
			}
			d := cgm.Owner(len(vp.p.queries), vp.p.v, int(qidx))
			parts[d] = append(parts[d], qidx, aboveIdx, belowIdx)
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(len(queries)/3) * int64(len(segs)/4+1))
		vp.phase = nextPhaseCollect
		return false, nil
	case nextPhaseCollect:
		for _, m := range in {
			vp.answers = append(vp.answers, m.Payload...)
		}
		vp.phase = 3
		return true, nil // answers are (qidx, above, below) triples
	default:
		return false, fmt.Errorf("cgmgeom: next-element VP stepped after completion")
	}
}

func (vp *nextVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	vp.slab.Save(enc)
	enc.PutUints(vp.segs)
	enc.PutUints(vp.queries)
	enc.PutUints(vp.answers)
}

func (vp *nextVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	vp.slab.Load(dec)
	vp.segs = dec.Uints()
	vp.queries = dec.Uints()
	vp.answers = dec.Uints()
}

// Output returns, per query index, the index of the segment directly
// above it, or -1 if none.
func (p *NextElement) Output(vps []bsp.VP) []int {
	above, _ := p.Trapezoids(vps)
	return above
}

// Trapezoids returns, per query index, the segments directly above
// and directly below the point (-1 where none): the query point's
// trapezoid in the decomposition induced by the segments.
func (p *NextElement) Trapezoids(vps []bsp.VP) (above, below []int) {
	above = make([]int, len(p.queries))
	below = make([]int, len(p.queries))
	for i := range above {
		above[i], below[i] = -1, -1
	}
	dec := func(u uint64) int {
		if u == ^uint64(0) {
			return -1
		}
		return int(u)
	}
	for _, vp := range vps {
		ans := vp.(*nextVP).answers
		for i := 0; i+3 <= len(ans); i += 3 {
			above[ans[i]] = dec(ans[i+1])
			below[ans[i]] = dec(ans[i+2])
		}
	}
	return above, below
}
