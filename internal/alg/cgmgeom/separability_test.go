package cgmgeom_test

import (
	"testing"
	"testing/quick"

	"embsp/internal/alg/algtest"
	"embsp/internal/alg/cgmgeom"
	"embsp/internal/bsp"
	"embsp/internal/prng"
)

// bruteSeparable decides hull disjointness by exhaustive candidate
// separating lines through all point pairs (O(n³), exact for point
// sets in general position) plus axis-aligned candidates.
func bruteSeparable(a, b []cgmgeom.Point) bool {
	all := append(append([]cgmgeom.Point{}, a...), b...)
	var dirs []cgmgeom.Point
	for i := range all {
		for j := range all {
			if i < j {
				dirs = append(dirs, cgmgeom.Point{X: -(all[j].Y - all[i].Y), Y: all[j].X - all[i].X})
				dirs = append(dirs, cgmgeom.Point{X: all[j].X - all[i].X, Y: all[j].Y - all[i].Y})
			}
		}
	}
	dirs = append(dirs, cgmgeom.Point{X: 1}, cgmgeom.Point{Y: 1})
	for _, d := range dirs {
		minA, maxA := proj(a, d)
		minB, maxB := proj(b, d)
		if maxA < minB || maxB < minA {
			return true
		}
	}
	return false
}

func proj(pts []cgmgeom.Point, d cgmgeom.Point) (lo, hi float64) {
	lo, hi = 1e300, -1e300
	for _, p := range pts {
		v := p.X*d.X + p.Y*d.Y
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

func shiftedPts(r *prng.Rand, n int, dx, dy float64) []cgmgeom.Point {
	out := make([]cgmgeom.Point, n)
	for i := range out {
		out[i] = cgmgeom.Point{X: dx + r.Float64(), Y: dy + r.Float64()}
	}
	return out
}

func TestSeparability(t *testing.T) {
	r := prng.New(47)
	cases := []struct {
		name string
		a, b []cgmgeom.Point
	}{
		{"farApart", shiftedPts(r, 30, 0, 0), shiftedPts(r, 30, 5, 5)},
		{"overlapping", shiftedPts(r, 30, 0, 0), shiftedPts(r, 30, 0.2, 0.2)},
		{"touchingGap", shiftedPts(r, 20, 0, 0), shiftedPts(r, 20, 1.05, 0)},
		{"diagonalGap", shiftedPts(r, 25, 0, 0), shiftedPts(r, 25, 1.2, 1.2)},
		{"singlePoints", []cgmgeom.Point{{X: 0, Y: 0}}, []cgmgeom.Point{{X: 1, Y: 1}}},
		{"pointInCloud", []cgmgeom.Point{{X: 0.5, Y: 0.5}}, shiftedPts(r, 40, 0, 0)},
		{"collinearSegs", []cgmgeom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}}, []cgmgeom.Point{{X: 2, Y: 0}, {X: 3, Y: 0}}},
		{"collinearOverlap", []cgmgeom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}}, []cgmgeom.Point{{X: 1, Y: 0}, {X: 3, Y: 0}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			for _, v := range []int{1, 3, 5} {
				p, err := cgmgeom.NewSeparability(c.a, c.b, v)
				if err != nil {
					t.Fatal(err)
				}
				res := algtest.RunAll(t, p, 97, func(vps []bsp.VP) []uint64 {
					if p.Output(vps) {
						return []uint64{1}
					}
					return []uint64{0}
				})
				got := p.Output(res.VPs)
				want := bruteSeparable(c.a, c.b)
				if got != want {
					t.Fatalf("v=%d: separable = %v, want %v", v, got, want)
				}
			}
		})
	}
}

func TestSeparabilityProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		na, nb := r.Intn(25)+1, r.Intn(25)+1
		dx := r.Float64() * 2.4 // sweeps through overlap and separation
		a := shiftedPts(r, na, 0, 0)
		b := shiftedPts(r, nb, dx, 0)
		p, err := cgmgeom.NewSeparability(a, b, r.Intn(6)+1)
		if err != nil {
			return false
		}
		res, err := bsp.Run(p, bsp.RunOptions{Seed: seed, ValidateContexts: true})
		if err != nil {
			return false
		}
		return p.Output(res.VPs) == bruteSeparable(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSeparabilityRejectsEmpty(t *testing.T) {
	if _, err := cgmgeom.NewSeparability(nil, []cgmgeom.Point{{}}, 1); err == nil {
		t.Error("empty set accepted")
	}
}
