package cgmgeom

import (
	"fmt"
	"math"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// Separability decides linear separability of two planar point sets
// (the Table 1 "Uni- and multi-directional separability" row): A and
// B are separable by a line iff their convex hulls are disjoint, and
// the set of separating directions is determined by the hulls. The
// program computes both hulls with the binomial-tree merge used by
// Hull2D (points tagged by set, λ = O(log v)) and VP 0 decides
// disjointness with a sequential convex-polygon intersection test on
// the two (typically tiny) hulls.
type Separability struct {
	v int
	a []Point
	b []Point
}

// NewSeparability returns the program for the two point sets.
func NewSeparability(a, b []Point, v int) (*Separability, error) {
	if v <= 0 {
		return nil, fmt.Errorf("cgmgeom: v = %d, want > 0", v)
	}
	if len(a) == 0 || len(b) == 0 {
		return nil, fmt.Errorf("cgmgeom: both point sets must be non-empty")
	}
	return &Separability{v: v, a: a, b: b}, nil
}

func (p *Separability) NumVPs() int { return p.v }

const sepRecW = 4 // enc(x), enc(y), set tag, index

func (p *Separability) n() int { return len(p.a) + len(p.b) }

func (p *Separability) MaxContextWords() int {
	s := cgm.Sorter{W: sepRecW}
	return 8 + s.SaveSize(3*cgm.MaxPart(p.n(), p.v)+p.v, p.v) + words.SizeUints(sepRecW*p.n())
}

func (p *Separability) MaxCommWords() int {
	sortComm := 3*cgm.MaxPart(p.n(), p.v)*sepRecW + p.v*(p.v*sepRecW+1) + p.v*((p.v-1)*sepRecW+1)
	mergeComm := sepRecW*p.n() + 16
	if mergeComm > sortComm {
		return mergeComm
	}
	return sortComm + 16
}

func (p *Separability) NewVP(id int) bsp.VP {
	lo, hi := cgm.Dist(p.n(), p.v, id)
	data := make([]uint64, 0, (hi-lo)*sepRecW)
	for i := lo; i < hi; i++ {
		var pt Point
		var tag uint64
		if i < len(p.a) {
			pt = p.a[i]
		} else {
			pt, tag = p.b[i-len(p.a)], 1
		}
		data = append(data, cgm.EncodeFloat(pt.X), cgm.EncodeFloat(pt.Y), tag, uint64(i))
	}
	return &sepVP{p: p, sorter: cgm.Sorter{W: sepRecW, Data: data}}
}

type sepVP struct {
	p         *Separability
	phase     uint64 // 0 sorting, then merge rounds as in Hull2D
	sorter    cgm.Sorter
	cand      []uint64 // x-sorted hull candidates of both sets
	separable uint64   // 1 = separable, valid at VP 0 when done
}

// sepCandidates keeps each set's hull candidates, preserving x order.
func sepCandidates(data []uint64) []uint64 {
	// Split by tag, reduce each to hull candidates, merge back by x.
	var a, b []uint64
	n := len(data) / sepRecW
	for i := 0; i < n; i++ {
		rec := data[i*sepRecW : (i+1)*sepRecW]
		if rec[2] == 0 {
			a = append(a, rec...)
		} else {
			b = append(b, rec...)
		}
	}
	a = hullCandidatesW(a, sepRecW)
	b = hullCandidatesW(b, sepRecW)
	// Merge by the encoded x key to restore global x order.
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case i == len(a):
			out = append(out, b[j:j+sepRecW]...)
			j += sepRecW
		case j == len(b):
			out = append(out, a[i:i+sepRecW]...)
			i += sepRecW
		case a[i] <= b[j]:
			out = append(out, a[i:i+sepRecW]...)
			i += sepRecW
		default:
			out = append(out, b[j:j+sepRecW]...)
			j += sepRecW
		}
	}
	return out
}

// hullCandidatesW generalizes hullCandidates to records of width w
// whose first two words are the encoded coordinates.
func hullCandidatesW(data []uint64, w int) []uint64 {
	n := len(data) / w
	if n <= 2 {
		return data
	}
	at := func(i int) (float64, float64) {
		return cgm.DecodeFloat(data[i*w]), cgm.DecodeFloat(data[i*w+1])
	}
	build := func(lower bool) []int {
		var h []int
		for i := 0; i < n; i++ {
			cx, cy := at(i)
			for len(h) >= 2 {
				ax, ay := at(h[len(h)-2])
				bx, by := at(h[len(h)-1])
				c := cross(ax, ay, bx, by, cx, cy)
				if (lower && c > 0) || (!lower && c < 0) {
					break
				}
				h = h[:len(h)-1]
			}
			h = append(h, i)
		}
		return h
	}
	keep := make([]bool, n)
	for _, i := range build(true) {
		keep[i] = true
	}
	for _, i := range build(false) {
		keep[i] = true
	}
	out := make([]uint64, 0, len(data))
	for i := 0; i < n; i++ {
		if keep[i] {
			out = append(out, data[i*w:(i+1)*w]...)
		}
	}
	return out
}

func (vp *sepVP) mergeRounds() int {
	r := 0
	for v := 1; v < vp.p.v; v <<= 1 {
		r++
	}
	return r
}

func (vp *sepVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	if vp.phase == 0 {
		done, err := vp.sorter.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		vp.cand = sepCandidates(vp.sorter.Data)
		env.Charge(int64(len(vp.sorter.Data) / sepRecW * 4))
		vp.sorter.Data = nil
		vp.phase = 1
		vp.maybeSend(env, 1)
		return false, nil
	}
	round := int(vp.phase)
	for _, m := range in {
		vp.cand = append(vp.cand, m.Payload...)
	}
	if len(in) > 0 {
		// Received candidates come from higher-x slabs; re-establish x
		// order by a merge-style pass, then reduce.
		cgm.SortRecords(vp.cand, sepRecW)
		vp.cand = sepCandidates(vp.cand)
		env.Charge(int64(len(vp.cand) / sepRecW * 8))
	}
	if round >= vp.mergeRounds() {
		if env.ID() == 0 {
			vp.separable = 0
			if hullsDisjoint(vp.cand) {
				vp.separable = 1
			}
			env.Charge(int64(len(vp.cand)))
		}
		vp.cand = nil
		return true, nil
	}
	stride := 1 << (round + 1)
	half := stride >> 1
	if env.ID()%stride == half {
		if len(vp.cand) > 0 {
			env.Send(env.ID()-half, vp.cand)
		}
		vp.cand = nil
	}
	vp.phase++
	return false, nil
}

// maybeSend ships candidates to the binomial-tree parent for round r.
func (vp *sepVP) maybeSend(env *bsp.Env, round int) {
	stride := 1 << round
	half := stride >> 1
	if env.ID()%stride == half {
		if len(vp.cand) > 0 {
			env.Send(env.ID()-half, vp.cand)
		}
		vp.cand = nil
	}
}

// hullsDisjoint tests whether the convex hulls of the two tagged
// candidate sets are disjoint, via separating-axis testing over the
// edge normals of both hulls (exact for convex polygons; degenerate
// hulls — points and segments — included).
func hullsDisjoint(cand []uint64) bool {
	var a, b []Point
	n := len(cand) / sepRecW
	for i := 0; i < n; i++ {
		pt := Point{cgm.DecodeFloat(cand[i*sepRecW]), cgm.DecodeFloat(cand[i*sepRecW+1])}
		if cand[i*sepRecW+2] == 0 {
			a = append(a, pt)
		} else {
			b = append(b, pt)
		}
	}
	ha, hb := hullOf(a), hullOf(b)
	axes := append(polyAxes(ha), polyAxes(hb)...)
	if len(ha) == 1 && len(hb) == 1 {
		axes = append(axes, Point{1, 0}, Point{0, 1})
	}
	for _, ax := range axes {
		minA, maxA := project(ha, ax)
		minB, maxB := project(hb, ax)
		if maxA < minB || maxB < minA {
			return true
		}
	}
	return false
}

// polyAxes returns the separating-axis candidates a convex polygon
// contributes: its edge normals, plus — for a degenerate segment —
// its direction (needed for collinear configurations).
func polyAxes(h []Point) []Point {
	switch {
	case len(h) >= 3:
		return edgeNormals(h)
	case len(h) == 2:
		dx, dy := h[1].X-h[0].X, h[1].Y-h[0].Y
		return []Point{{-dy, dx}, {dx, dy}}
	default:
		return nil
	}
}

func hullOf(pts []Point) []Point {
	if len(pts) <= 2 {
		return pts
	}
	flat := make([]uint64, 0, 3*len(pts))
	for i, p := range pts {
		flat = append(flat, cgm.EncodeFloat(p.X), cgm.EncodeFloat(p.Y), uint64(i))
	}
	cgm.SortRecords(flat, 3)
	lower := chain(flat, true)
	upper := chain(flat, false)
	var out []Point
	for _, i := range lower {
		out = append(out, Point{cgm.DecodeFloat(flat[i*3]), cgm.DecodeFloat(flat[i*3+1])})
	}
	for j := len(upper) - 2; j >= 1; j-- {
		i := upper[j]
		out = append(out, Point{cgm.DecodeFloat(flat[i*3]), cgm.DecodeFloat(flat[i*3+1])})
	}
	return out
}

func edgeNormals(h []Point) []Point {
	if len(h) < 3 {
		return nil
	}
	out := make([]Point, 0, len(h))
	for i := range h {
		j := (i + 1) % len(h)
		out = append(out, Point{-(h[j].Y - h[i].Y), h[j].X - h[i].X})
	}
	return out
}

func project(h []Point, ax Point) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	for _, p := range h {
		d := p.X*ax.X + p.Y*ax.Y
		if d < lo {
			lo = d
		}
		if d > hi {
			hi = d
		}
	}
	return lo, hi
}

func (vp *sepVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	enc.PutUint(vp.separable)
	vp.sorter.Save(enc)
	enc.PutUints(vp.cand)
}

func (vp *sepVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	vp.separable = dec.Uint()
	vp.sorter.W = sepRecW
	vp.sorter.Load(dec)
	vp.cand = dec.Uints()
}

// Output reports whether the two sets are linearly separable.
func (p *Separability) Output(vps []bsp.VP) bool {
	return vps[0].(*sepVP).separable == 1
}
