package cgmgeom

import (
	"fmt"
	"math"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// GenEnvelope computes the lower envelope of n line segments that MAY
// intersect (the Table 1 "Generalized lower envelope of line
// segments" row, whose output complexity is the Davenport–Schinzel
// bound O(n·α(n))): for each covered x, the segment of minimum y.
//
// CGM algorithm (λ = O(1) rounds): the Envelope slab protocol —
// balanced x-slabs from the sorted endpoint keys, segments replicated
// into overlapped slabs, ordered gather of pieces at VP 0 — with a
// divide-and-conquer local phase: each slab recursively merges
// envelopes of segment halves, splitting pieces at pairwise line
// crossings.
type GenEnvelope struct {
	v    int
	n    int
	segs []Segment
}

// NewGenEnvelope returns the program for the given segments on v VPs.
// Segments must satisfy X1 < X2 (no vertical segments) but may cross.
func NewGenEnvelope(segs []Segment, v int) (*GenEnvelope, error) {
	if v <= 0 {
		return nil, fmt.Errorf("cgmgeom: v = %d, want > 0", v)
	}
	for i, s := range segs {
		if !(s.X1 < s.X2) {
			return nil, fmt.Errorf("cgmgeom: segment %d has X1 >= X2", i)
		}
	}
	return &GenEnvelope{v: v, n: len(segs), segs: segs}, nil
}

func (p *GenEnvelope) NumVPs() int { return p.v }

func (p *GenEnvelope) MaxContextWords() int {
	maxKeys := 2 * cgm.MaxPart(p.n, p.v)
	sl := Slabber{}
	// Piece counts are O(n·α(n)); budget a generous linear multiple.
	return 4 + sl.SaveSize(3*maxKeys+p.v, p.v) + words.SizeUints(5*cgm.MaxPart(p.n, p.v)) + words.SizeUints(16*p.n+64)
}

func (p *GenEnvelope) MaxCommWords() int {
	maxKeys := 2 * cgm.MaxPart(p.n, p.v)
	sortComm := 3*maxKeys + p.v*(p.v+1) + p.v*p.v
	replicate := 5 * cgm.MaxPart(p.n, p.v) * p.v
	recv := 5*p.n + p.v
	pieces := 16*p.n + 64
	m := sortComm
	for _, c := range []int{replicate, recv, pieces} {
		if c > m {
			m = c
		}
	}
	return m + p.v + 16
}

func (p *GenEnvelope) NewVP(id int) bsp.VP {
	lo, hi := cgm.Dist(p.n, p.v, id)
	keys := make([]uint64, 0, 2*(hi-lo))
	mine := make([]uint64, 0, 5*(hi-lo))
	for i := lo; i < hi; i++ {
		s := p.segs[i]
		keys = append(keys, cgm.EncodeFloat(s.X1), cgm.EncodeFloat(s.X2))
		mine = append(mine,
			math.Float64bits(s.X1), math.Float64bits(s.Y1),
			math.Float64bits(s.X2), math.Float64bits(s.Y2),
			uint64(i))
	}
	return &genEnvVP{p: p, slab: Slabber{Data: keys}, mine: mine}
}

type genEnvVP struct {
	p      *GenEnvelope
	phase  uint64
	slab   Slabber
	mine   []uint64
	pieces []uint64 // final glued pieces at VP 0: (x1 bits, x2 bits, idx)
}

// envPiece is one piece of a lower envelope during the local merge:
// on [x1, x2) segment seg (or -1 for a gap) is lowest.
type envPiece struct {
	x1, x2 float64
	seg    int
}

// segLine evaluates segment s (by original coordinates) at x.
func segLine(s Segment, x float64) float64 {
	return s.Y1 + (s.Y2-s.Y1)*(x-s.X1)/(s.X2-s.X1)
}

// mergeEnvelopes computes the pointwise minimum of two envelopes that
// cover the same interval, splitting at line crossings. segs supplies
// coordinates by original index.
func mergeEnvelopes(a, b []envPiece, segAt func(int) Segment) []envPiece {
	var out []envPiece
	emit := func(p envPiece) {
		if p.x1 >= p.x2 {
			return
		}
		if n := len(out); n > 0 && out[n-1].seg == p.seg && out[n-1].x2 == p.x1 {
			out[n-1].x2 = p.x2
			return
		}
		out = append(out, p)
	}
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		l := math.Max(a[i].x1, b[j].x1)
		r := math.Min(a[i].x2, b[j].x2)
		sa, sb := a[i].seg, b[j].seg
		switch {
		case l >= r:
		case sa < 0 && sb < 0:
			emit(envPiece{l, r, -1})
		case sa < 0:
			emit(envPiece{l, r, sb})
		case sb < 0:
			emit(envPiece{l, r, sa})
		default:
			ya1, yb1 := segLine(segAt(sa), l), segLine(segAt(sb), l)
			ya2, yb2 := segLine(segAt(sa), r), segLine(segAt(sb), r)
			lowAtL := sa
			if yb1 < ya1 || (yb1 == ya1 && sb < sa) {
				lowAtL = sb
			}
			lowAtR := sa
			if yb2 < ya2 || (yb2 == ya2 && sb < sa) {
				lowAtR = sb
			}
			switch {
			case lowAtL == lowAtR:
				emit(envPiece{l, r, lowAtL})
			case ya1 == yb1:
				emit(envPiece{l, r, lowAtR})
			case ya2 == yb2:
				emit(envPiece{l, r, lowAtL})
			default:
				// A proper crossing inside (l, r): intersect the lines.
				A, B := segAt(sa), segAt(sb)
				ma := (A.Y2 - A.Y1) / (A.X2 - A.X1)
				mb := (B.Y2 - B.Y1) / (B.X2 - B.X1)
				ca := A.Y1 - ma*A.X1
				cb := B.Y1 - mb*B.X1
				x := (cb - ca) / (ma - mb)
				if !(x > l && x < r) {
					// Numerical degeneracy: fall back to the midpoint.
					x = l + (r-l)/2
				}
				emit(envPiece{l, x, lowAtL})
				emit(envPiece{x, r, lowAtR})
			}
		}
		if a[i].x2 <= b[j].x2 {
			i++
		} else {
			j++
		}
	}
	return out
}

// envelopeOf computes the lower envelope of the given segment indices
// over [lo, hi] by divide and conquer.
func envelopeOf(idxs []int, lo, hi float64, segAt func(int) Segment) []envPiece {
	if len(idxs) == 0 {
		return []envPiece{{lo, hi, -1}}
	}
	if len(idxs) == 1 {
		s := segAt(idxs[0])
		x1, x2 := math.Max(s.X1, lo), math.Min(s.X2, hi)
		var out []envPiece
		if lo < x1 {
			out = append(out, envPiece{lo, x1, -1})
		}
		if x1 < x2 {
			out = append(out, envPiece{x1, x2, idxs[0]})
		}
		if math.Max(x1, x2) < hi {
			out = append(out, envPiece{math.Max(x1, x2), hi, -1})
		}
		if len(out) == 0 {
			out = append(out, envPiece{lo, hi, -1})
		}
		return out
	}
	mid := len(idxs) / 2
	return mergeEnvelopes(
		envelopeOf(idxs[:mid], lo, hi, segAt),
		envelopeOf(idxs[mid:], lo, hi, segAt),
		segAt,
	)
}

func (vp *genEnvVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	switch vp.phase {
	case envPhaseSlab:
		done, err := vp.slab.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		parts := make([][]uint64, env.NumVPs())
		for i := 0; i+5 <= len(vp.mine); i += 5 {
			x1 := math.Float64frombits(vp.mine[i])
			x2 := math.Float64frombits(vp.mine[i+2])
			lo, hi := SlabRange(vp.slab.Bounds, cgm.EncodeFloat(x1), cgm.EncodeFloat(x2))
			for s := lo; s <= hi; s++ {
				parts[s] = append(parts[s], vp.mine[i:i+5]...)
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(len(vp.mine)))
		vp.mine = nil
		vp.phase = envPhaseSweep
		return false, nil

	case envPhaseSweep:
		pieces := vp.localEnvelope(env, in)
		if len(pieces) > 0 {
			env.Send(0, pieces)
		}
		vp.phase = envPhaseGlue
		return false, nil

	case envPhaseGlue:
		if env.ID() == 0 {
			var all []uint64
			for _, m := range in {
				all = append(all, m.Payload...)
			}
			for i := 0; i+3 <= len(all); i += 3 {
				n := len(vp.pieces)
				if n >= 3 && vp.pieces[n-1] == all[i+2] && vp.pieces[n-2] == all[i] {
					vp.pieces[n-2] = all[i+1]
					continue
				}
				vp.pieces = append(vp.pieces, all[i:i+3]...)
			}
			env.Charge(int64(len(all)))
		}
		vp.phase = 3
		return true, nil

	default:
		return false, fmt.Errorf("cgmgeom: generalized-envelope VP stepped after completion")
	}
}

// localEnvelope computes the envelope pieces within this VP's strip.
func (vp *genEnvVP) localEnvelope(env *bsp.Env, in []bsp.Message) []uint64 {
	id := env.ID()
	slabLo := math.Inf(-1)
	if id > 0 {
		slabLo = BoundFloat(vp.slab.Bounds[id])
	}
	slabHi := math.Inf(1)
	if id < env.NumVPs()-1 {
		slabHi = BoundFloat(vp.slab.Bounds[id+1])
	}
	segMap := map[int]Segment{}
	var idxs []int
	for _, m := range in {
		for i := 0; i+5 <= len(m.Payload); i += 5 {
			s := Segment{
				X1: math.Float64frombits(m.Payload[i]),
				Y1: math.Float64frombits(m.Payload[i+1]),
				X2: math.Float64frombits(m.Payload[i+2]),
				Y2: math.Float64frombits(m.Payload[i+3]),
			}
			idx := int(m.Payload[i+4])
			if _, dup := segMap[idx]; !dup {
				segMap[idx] = s
				idxs = append(idxs, idx)
			}
		}
	}
	if len(idxs) == 0 {
		return nil
	}
	// Clamp the infinite strip edges using the extreme coordinates.
	if math.IsInf(slabLo, -1) || math.IsInf(slabHi, 1) {
		lo2, hi2 := math.Inf(1), math.Inf(-1)
		for _, i := range idxs {
			lo2 = math.Min(lo2, segMap[i].X1)
			hi2 = math.Max(hi2, segMap[i].X2)
		}
		if math.IsInf(slabLo, -1) {
			slabLo = lo2
		}
		if math.IsInf(slabHi, 1) {
			slabHi = hi2
		}
	}
	if !(slabLo < slabHi) {
		return nil
	}
	segAt := func(i int) Segment { return segMap[i] }
	pieces := envelopeOf(idxs, slabLo, slabHi, segAt)
	envCost := int64(len(idxs)) * int64(len(pieces)+1)
	env.Charge(envCost)
	var out []uint64
	for _, p := range pieces {
		if p.seg < 0 || p.x1 >= p.x2 {
			continue
		}
		n := len(out)
		if n >= 3 && out[n-1] == uint64(p.seg) && math.Float64frombits(out[n-2]) == p.x1 {
			out[n-2] = math.Float64bits(p.x2)
			continue
		}
		out = append(out, math.Float64bits(p.x1), math.Float64bits(p.x2), uint64(p.seg))
	}
	return out
}

func (vp *genEnvVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	vp.slab.Save(enc)
	enc.PutUints(vp.mine)
	enc.PutUints(vp.pieces)
}

func (vp *genEnvVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	vp.slab.Load(dec)
	vp.mine = dec.Uints()
	vp.pieces = dec.Uints()
}

// Output returns the envelope pieces in x order.
func (p *GenEnvelope) Output(vps []bsp.VP) []EnvelopePiece {
	raw := vps[0].(*genEnvVP).pieces
	out := make([]EnvelopePiece, 0, len(raw)/3)
	for i := 0; i+3 <= len(raw); i += 3 {
		out = append(out, EnvelopePiece{
			X1:  math.Float64frombits(raw[i]),
			X2:  math.Float64frombits(raw[i+1]),
			Seg: int(raw[i+2]),
		})
	}
	return out
}
