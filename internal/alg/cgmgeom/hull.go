package cgmgeom

import (
	"fmt"
	"math/bits"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// Hull2D computes the convex hull of n distinct points, standing in
// for the Table 1 "3D convex hull / 2D Voronoi diagram / Delaunay
// triangulation" family (see DESIGN.md §5: we use ⌈log₂ v⌉
// deterministic merge rounds instead of the cited randomized
// O(1)-round algorithm; the measured λ is reported alongside).
//
// Algorithm: global sort by (x, y); each VP reduces its slab to hull
// candidates (local upper+lower chains); candidates are then merged
// pairwise along a binomial tree — x-ranges are disjoint and ordered,
// so a merge is a concatenation followed by a monotone-chain rescan.
// VP 0 ends with the global hull.
type Hull2D struct {
	v   int
	n   int
	pts []Point
}

// NewHull2D returns the program for the given points on v VPs.
func NewHull2D(pts []Point, v int) (*Hull2D, error) {
	if v <= 0 {
		return nil, fmt.Errorf("cgmgeom: v = %d, want > 0", v)
	}
	return &Hull2D{v: v, n: len(pts), pts: pts}, nil
}

func (p *Hull2D) NumVPs() int { return p.v }

const hullRecW = 3 // enc(x), enc(y), index

// mergeRounds returns ⌈log₂ v⌉.
func (p *Hull2D) mergeRounds() int {
	return bits.Len(uint(p.v - 1))
}

func (p *Hull2D) MaxContextWords() int {
	// Hull candidates can reach the full point set in the worst case
	// (points in convex position all survive every merge).
	s := cgm.Sorter{W: hullRecW}
	return 4 + s.SaveSize(3*cgm.MaxPart(p.n, p.v)+p.v, p.v) + words.SizeUints(hullRecW*p.n) + words.SizeUints(2*p.n)
}

func (p *Hull2D) MaxCommWords() int {
	sortComm := 3*cgm.MaxPart(p.n, p.v)*hullRecW + p.v*(p.v*hullRecW+1) + p.v*((p.v-1)*hullRecW+1)
	mergeComm := hullRecW*p.n + 1
	if mergeComm > sortComm {
		return mergeComm + 16
	}
	return sortComm + 16
}

func (p *Hull2D) NewVP(id int) bsp.VP {
	lo, hi := cgm.Dist(p.n, p.v, id)
	data := make([]uint64, 0, (hi-lo)*hullRecW)
	for i := lo; i < hi; i++ {
		data = append(data,
			cgm.EncodeFloat(p.pts[i].X),
			cgm.EncodeFloat(p.pts[i].Y),
			uint64(i),
		)
	}
	return &hullVP{p: p, sorter: cgm.Sorter{W: hullRecW, Data: data}}
}

type hullVP struct {
	p      *Hull2D
	phase  uint64 // 0 = sorting, 1.. = merge round
	sorter cgm.Sorter
	cand   []uint64 // hull candidates, x-sorted records
	result []uint64 // hull indices in CCW order (VP 0 only)
}

// cross returns the z-component of (b-a) × (c-a).
func cross(ax, ay, bx, by, cx, cy float64) float64 {
	return (bx-ax)*(cy-ay) - (by-ay)*(cx-ax)
}

// chain computes one hull chain over x-sorted records: lower (keep
// counter-clockwise turns) if lower, else upper. It returns record
// indices into data. Collinear middle points are dropped.
func chain(data []uint64, lower bool) []int {
	n := len(data) / hullRecW
	var h []int
	at := func(i int) (float64, float64) {
		return cgm.DecodeFloat(data[i*hullRecW]), cgm.DecodeFloat(data[i*hullRecW+1])
	}
	for i := 0; i < n; i++ {
		cx, cy := at(i)
		for len(h) >= 2 {
			ax, ay := at(h[len(h)-2])
			bx, by := at(h[len(h)-1])
			c := cross(ax, ay, bx, by, cx, cy)
			if (lower && c > 0) || (!lower && c < 0) {
				break
			}
			h = h[:len(h)-1]
		}
		h = append(h, i)
	}
	return h
}

// hullCandidates reduces x-sorted records to the union of their upper
// and lower chains, preserving x order.
func hullCandidates(data []uint64) []uint64 {
	n := len(data) / hullRecW
	if n <= 2 {
		return data
	}
	keep := make([]bool, n)
	for _, i := range chain(data, true) {
		keep[i] = true
	}
	for _, i := range chain(data, false) {
		keep[i] = true
	}
	out := make([]uint64, 0, len(data))
	for i := 0; i < n; i++ {
		if keep[i] {
			out = append(out, data[i*hullRecW:(i+1)*hullRecW]...)
		}
	}
	return out
}

func (vp *hullVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	if vp.phase == 0 {
		done, err := vp.sorter.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		vp.cand = hullCandidates(vp.sorter.Data)
		chargeHull(env, len(vp.sorter.Data)/hullRecW)
		vp.sorter.Data = nil
		vp.phase = 1
		vp.maybeSend(env, 1)
		return false, nil
	}
	round := int(vp.phase) // the inbox holds this round's candidates
	// Merge candidates received from this round's partner (if any):
	// slabs are x-ordered and our slab precedes the partner's, so
	// concatenation keeps x order.
	for _, m := range in {
		vp.cand = append(vp.cand, m.Payload...)
	}
	if len(in) > 0 {
		vp.cand = hullCandidates(vp.cand)
		chargeHull(env, len(vp.cand)/hullRecW)
	}
	if round >= vp.p.mergeRounds() {
		if env.ID() == 0 {
			vp.result = finalizeHull(vp.cand)
		}
		vp.cand = nil
		return true, nil
	}
	vp.maybeSend(env, round+1)
	vp.phase++
	return false, nil
}

// maybeSend ships this VP's candidates to its binomial-tree parent in
// the given merge round.
func (vp *hullVP) maybeSend(env *bsp.Env, round int) {
	stride := 1 << round
	half := stride >> 1
	if env.ID()%stride == half {
		if len(vp.cand) > 0 {
			env.Send(env.ID()-half, vp.cand)
		}
		vp.cand = nil
	}
}

func chargeHull(env *bsp.Env, n int) {
	if n > 0 {
		env.Charge(int64(n) * 4)
	}
}

// finalizeHull turns x-sorted hull candidates into the hull vertex
// sequence in counter-clockwise order, starting at the leftmost point.
func finalizeHull(data []uint64) []uint64 {
	n := len(data) / hullRecW
	if n == 0 {
		return nil
	}
	if n <= 2 {
		out := make([]uint64, 0, n)
		for i := 0; i < n; i++ {
			out = append(out, data[i*hullRecW+2])
		}
		return out
	}
	lower := chain(data, true)
	upper := chain(data, false)
	out := make([]uint64, 0, len(lower)+len(upper)-2)
	for _, i := range lower {
		out = append(out, data[i*hullRecW+2])
	}
	for j := len(upper) - 2; j >= 1; j-- {
		out = append(out, data[upper[j]*hullRecW+2])
	}
	return out
}

func (vp *hullVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	vp.sorter.Save(enc)
	enc.PutUints(vp.cand)
	enc.PutUints(vp.result)
}

func (vp *hullVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	vp.sorter.W = hullRecW
	vp.sorter.Load(dec)
	vp.cand = dec.Uints()
	vp.result = dec.Uints()
}

// Output returns the hull vertex indices in counter-clockwise order,
// starting at the leftmost point.
func (p *Hull2D) Output(vps []bsp.VP) []int {
	raw := vps[0].(*hullVP).result
	out := make([]int, len(raw))
	for i, u := range raw {
		out[i] = int(u)
	}
	return out
}

// Lambda returns the supersteps this program takes: sort plus one
// superstep per merge round (with a minimum of one finalization
// superstep).
func (p *Hull2D) Lambda() int { return cgm.SorterSupersteps + maxIntGeom(1, p.mergeRounds()) }

func maxIntGeom(a, b int) int {
	if a > b {
		return a
	}
	return b
}
