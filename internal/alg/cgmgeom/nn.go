package cgmgeom

import (
	"fmt"
	"math"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// NN2D computes all nearest neighbors in the plane (the Table 1
// "2D-nearest neighbors" row): for every point, the index of its
// closest other point (Euclidean distance; -1 when n < 2).
//
// CGM algorithm: balanced x-slabs (Slabber over the points), a local
// nearest-neighbor pass within each slab, then iterative refinement —
// a point whose current best distance exceeds its distance to an
// unexplored slab boundary sends a bounded query one slab outward;
// queried slabs reply with improvements. Rounds repeat (3 supersteps
// each: query, answer+global count, update) until a global round
// sends no queries; termination is detected with a count gather and
// broadcast through VP 0. Expected O(1) rounds on uniform inputs,
// at most v rounds in the worst case (measured λ is reported).
type NN2D struct {
	v   int
	n   int
	pts []Point
}

// NewNN2D returns the program for the given points on v VPs.
func NewNN2D(pts []Point, v int) (*NN2D, error) {
	if v <= 0 {
		return nil, fmt.Errorf("cgmgeom: v = %d, want > 0", v)
	}
	return &NN2D{v: v, n: len(pts), pts: pts}, nil
}

func (p *NN2D) NumVPs() int { return p.v }

const nnRecW = 3 // enc(x), enc(y), index

func (p *NN2D) maxRecs() int { return 3*cgm.MaxPart(p.n, p.v) + p.v }

func (p *NN2D) MaxContextWords() int {
	sl := Slabber{W: nnRecW}
	m := p.maxRecs()
	// Slabber (holding the slab records), per-point state (best
	// distance, best index, explored range), answers, phase/round.
	return 8 + sl.SaveSize(m, p.v) + 4*words.SizeUints(m) + words.SizeUints(2*cgm.MaxPart(p.n, p.v))
}

func (p *NN2D) MaxCommWords() int {
	m := p.maxRecs()
	sortComm := 3*cgm.MaxPart(p.n, p.v)*nnRecW + p.v*(p.v*nnRecW+1) + p.v*((p.v-1)*nnRecW+1)
	// A round's queries: every local point may query both sides.
	queries := 2*m*5 + p.v + 4
	replies := 2*m*4 + p.v + 4
	answers := 2*m + p.v
	c := sortComm
	for _, x := range []int{queries, replies, answers} {
		if x > c {
			c = x
		}
	}
	return c + 16
}

func (p *NN2D) NewVP(id int) bsp.VP {
	lo, hi := cgm.Dist(p.n, p.v, id)
	data := make([]uint64, 0, (hi-lo)*nnRecW)
	for i := lo; i < hi; i++ {
		data = append(data,
			cgm.EncodeFloat(p.pts[i].X),
			cgm.EncodeFloat(p.pts[i].Y),
			uint64(i),
		)
	}
	return &nnVP{p: p, slab: Slabber{W: nnRecW, Data: data}}
}

// Message tags for the refinement rounds.
const (
	nnTagQuery = iota // to a slab: (tag, then 5-word queries)
	nnTagCount        // to VP 0: (tag, #queries sent)
	nnTagReply        // to the asker: (tag, then 3-word replies)
	nnTagTotal        // from VP 0: (tag, global #queries)
)

const (
	nnPhaseSlab    = 0
	nnPhaseQuery   = 1
	nnPhaseAnswer  = 2
	nnPhaseUpdate  = 3
	nnPhaseCollect = 4
	nnPhaseDone    = 5
)

type nnVP struct {
	p     *NN2D
	phase uint64
	slab  Slabber

	// Per local (slab-sorted) point state.
	bestD2  []uint64 // float bits, +Inf when unknown
	bestIdx []uint64 // ^0 when unknown
	sl, sr  []uint64 // explored slab range per point (inclusive)

	answers []uint64 // owned (pointIdx, nnIdx) pairs
}

// localPts decodes the slab records.
func (vp *nnVP) localPts() (xs, ys []float64, idx []uint64) {
	n := len(vp.slab.Data) / nnRecW
	xs = make([]float64, n)
	ys = make([]float64, n)
	idx = make([]uint64, n)
	for i := 0; i < n; i++ {
		xs[i] = cgm.DecodeFloat(vp.slab.Data[i*nnRecW])
		ys[i] = cgm.DecodeFloat(vp.slab.Data[i*nnRecW+1])
		idx[i] = vp.slab.Data[i*nnRecW+2]
	}
	return xs, ys, idx
}

// scanBest finds the best candidate for (qx, qy) among the local
// x-sorted points, strictly improving on d2, excluding point index
// self. It returns the improved (d2, idx) or ok=false.
func scanBest(xs, ys []float64, idx []uint64, qx, qy, d2 float64, self uint64) (float64, uint64, bool) {
	n := len(xs)
	// Binary search for qx.
	lo, hi := 0, n
	for lo < hi {
		mid := (lo + hi) / 2
		if xs[mid] < qx {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	best := d2
	bi := ^uint64(0)
	consider := func(i int) {
		if idx[i] == self {
			return
		}
		dx, dy := xs[i]-qx, ys[i]-qy
		dd := dx*dx + dy*dy
		if dd < best {
			best, bi = dd, idx[i]
		}
	}
	for i := lo; i < n; i++ {
		dx := xs[i] - qx
		if dx*dx >= best {
			break
		}
		consider(i)
	}
	for i := lo - 1; i >= 0; i-- {
		dx := xs[i] - qx
		if dx*dx >= best {
			break
		}
		consider(i)
	}
	if bi == ^uint64(0) {
		return d2, bi, false
	}
	return best, bi, true
}

func (vp *nnVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	switch vp.phase {
	case nnPhaseSlab:
		done, err := vp.slab.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		// Local pass within the slab.
		xs, ys, idx := vp.localPts()
		n := len(xs)
		vp.bestD2 = make([]uint64, n)
		vp.bestIdx = make([]uint64, n)
		vp.sl = make([]uint64, n)
		vp.sr = make([]uint64, n)
		for i := 0; i < n; i++ {
			d2, bi, _ := scanBest(xs, ys, idx, xs[i], ys[i], math.Inf(1), idx[i])
			vp.bestD2[i] = math.Float64bits(d2)
			vp.bestIdx[i] = bi
			vp.sl[i] = uint64(env.ID())
			vp.sr[i] = uint64(env.ID())
		}
		env.Charge(int64(n) * 16)
		vp.phase = nnPhaseQuery
		return false, nil
	case nnPhaseQuery:
		xs, ys, _ := vp.localPts()
		v := env.NumVPs()
		parts := make([][]uint64, v)
		var sent uint64
		for i := range xs {
			d2 := math.Float64frombits(vp.bestD2[i])
			if s := int(vp.sl[i]); s > 0 {
				edge := BoundFloat(vp.slab.Bounds[s])
				dx := xs[i] - edge
				if dx*dx < d2 {
					parts[s-1] = append(parts[s-1],
						math.Float64bits(xs[i]), math.Float64bits(ys[i]),
						vp.bestD2[i], uint64(i), vp.slab.Data[i*nnRecW+2])
					vp.sl[i] = uint64(s - 1)
					sent++
				}
			}
			d2 = math.Float64frombits(vp.bestD2[i])
			if s := int(vp.sr[i]); s < v-1 {
				edge := BoundFloat(vp.slab.Bounds[s+1])
				dx := edge - xs[i]
				if dx*dx < d2 {
					parts[s+1] = append(parts[s+1],
						math.Float64bits(xs[i]), math.Float64bits(ys[i]),
						vp.bestD2[i], uint64(i), vp.slab.Data[i*nnRecW+2])
					vp.sr[i] = uint64(s + 1)
					sent++
				}
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, append([]uint64{nnTagQuery}, part...))
			}
		}
		env.Send(0, []uint64{nnTagCount, sent})
		env.Charge(int64(len(xs)) * 4)
		vp.phase = nnPhaseAnswer
		return false, nil
	case nnPhaseAnswer:
		xs, ys, idx := vp.localPts()
		var total uint64
		for _, m := range in {
			switch m.Payload[0] {
			case nnTagQuery:
				var reply []uint64
				q := m.Payload[1:]
				for i := 0; i+5 <= len(q); i += 5 {
					qx := math.Float64frombits(q[i])
					qy := math.Float64frombits(q[i+1])
					qd2 := math.Float64frombits(q[i+2])
					ref := q[i+3]
					self := q[i+4]
					if d2, bi, ok := scanBest(xs, ys, idx, qx, qy, qd2, self); ok {
						reply = append(reply, ref, math.Float64bits(d2), bi)
					}
				}
				if len(reply) > 0 {
					env.Send(m.Src, append([]uint64{nnTagReply}, reply...))
				}
				env.Charge(int64(len(q) / 5 * 8))
			case nnTagCount:
				total += m.Payload[1]
			default:
				return false, fmt.Errorf("cgmgeom: unexpected tag %d in answer phase", m.Payload[0])
			}
		}
		if env.ID() == 0 {
			for d := 0; d < env.NumVPs(); d++ {
				env.Send(d, []uint64{nnTagTotal, total})
			}
		}
		vp.phase = nnPhaseUpdate
		return false, nil
	case nnPhaseUpdate:
		var total uint64
		sawTotal := false
		for _, m := range in {
			switch m.Payload[0] {
			case nnTagReply:
				r := m.Payload[1:]
				for i := 0; i+3 <= len(r); i += 3 {
					ref := r[i]
					d2 := math.Float64frombits(r[i+1])
					if d2 < math.Float64frombits(vp.bestD2[ref]) {
						vp.bestD2[ref] = r[i+1]
						vp.bestIdx[ref] = r[i+2]
					}
				}
			case nnTagTotal:
				total = m.Payload[1]
				sawTotal = true
			default:
				return false, fmt.Errorf("cgmgeom: unexpected tag %d in update phase", m.Payload[0])
			}
		}
		if !sawTotal {
			return false, fmt.Errorf("cgmgeom: missing round total")
		}
		if total > 0 {
			vp.phase = nnPhaseQuery
			return false, nil
		}
		// Converged: route answers to the owners of the original
		// indices.
		parts := make([][]uint64, env.NumVPs())
		n := len(vp.slab.Data) / nnRecW
		for i := 0; i < n; i++ {
			pi := vp.slab.Data[i*nnRecW+2]
			d := cgm.Owner(vp.p.n, vp.p.v, int(pi))
			parts[d] = append(parts[d], pi, vp.bestIdx[i])
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		vp.phase = nnPhaseCollect
		return false, nil
	case nnPhaseCollect:
		for _, m := range in {
			vp.answers = append(vp.answers, m.Payload...)
		}
		vp.phase = nnPhaseDone
		return true, nil
	default:
		return false, fmt.Errorf("cgmgeom: NN VP stepped after completion")
	}
}

func (vp *nnVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	vp.slab.Save(enc)
	enc.PutUints(vp.bestD2)
	enc.PutUints(vp.bestIdx)
	enc.PutUints(vp.sl)
	enc.PutUints(vp.sr)
	enc.PutUints(vp.answers)
}

func (vp *nnVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	vp.slab.W = nnRecW
	vp.slab.Load(dec)
	vp.bestD2 = dec.Uints()
	vp.bestIdx = dec.Uints()
	vp.sl = dec.Uints()
	vp.sr = dec.Uints()
	vp.answers = dec.Uints()
}

// Output returns, per point index, the index of its nearest neighbor
// (-1 when undefined).
func (p *NN2D) Output(vps []bsp.VP) []int {
	out := make([]int, p.n)
	for i := range out {
		out[i] = -1
	}
	for _, vp := range vps {
		ans := vp.(*nnVP).answers
		for i := 0; i+2 <= len(ans); i += 2 {
			if ans[i+1] != ^uint64(0) {
				out[ans[i]] = int(ans[i+1])
			}
		}
	}
	return out
}
