package cgmgeom

import (
	"fmt"
	"sort"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// Maxima3D computes the 3D maxima of a point set: the points p such
// that no other point q has q.X > p.X, q.Y > p.Y and q.Z > p.Z
// (coordinates are assumed distinct).
//
// CGM algorithm (λ = O(1) rounds, the Table 1 "3D-maxima" row):
// sort by x descending into slabs, compute each slab's local maxima
// (a staircase sweep), broadcast the local maxima candidates to all
// lower slabs, and filter each slab's candidates against the
// staircase of all higher-x candidates. Only local maxima of a slab
// can dominate points in lower slabs (domination in (y, z) is
// transitive), so the filter is exact. The broadcast volume is the
// number of local maxima — small for random inputs, Θ(n) in the
// worst case (documented in DESIGN.md §5).
type Maxima3D struct {
	v   int
	n   int
	pts []Point3
}

// NewMaxima3D returns the program for the given points on v VPs.
func NewMaxima3D(pts []Point3, v int) (*Maxima3D, error) {
	if v <= 0 {
		return nil, fmt.Errorf("cgmgeom: v = %d, want > 0", v)
	}
	return &Maxima3D{v: v, n: len(pts), pts: pts}, nil
}

func (p *Maxima3D) NumVPs() int { return p.v }

const maximaRecW = 4 // ^enc(x), enc(y), enc(z), index

func (p *Maxima3D) MaxContextWords() int {
	maxRecs := 3*cgm.MaxPart(p.n, p.v) + p.v
	s := cgm.Sorter{W: maximaRecW}
	// Sorter state, local-maxima candidates, result indices, phase.
	return 2 + s.SaveSize(maxRecs, p.v) + words.SizeUints(3*maxRecs) + words.SizeUints(maxRecs)
}

func (p *Maxima3D) MaxCommWords() int {
	maxRecs := 3*cgm.MaxPart(p.n, p.v) + p.v
	sortComm := 3*cgm.MaxPart(p.n, p.v)*maximaRecW + p.v*(p.v*maximaRecW+1) + p.v*((p.v-1)*maximaRecW+1)
	// Candidate broadcast: worst case every VP sends all its records
	// to every lower VP, and a VP receives all records of higher VPs.
	bcast := 3*maxRecs*p.v + p.v
	if bcast > sortComm {
		return bcast + 16
	}
	return sortComm + 16
}

func (p *Maxima3D) NewVP(id int) bsp.VP {
	lo, hi := cgm.Dist(p.n, p.v, id)
	data := make([]uint64, 0, (hi-lo)*maximaRecW)
	for i := lo; i < hi; i++ {
		pt := p.pts[i]
		data = append(data,
			^cgm.EncodeFloat(pt.X), // ascending sort = descending x
			cgm.EncodeFloat(pt.Y),
			cgm.EncodeFloat(pt.Z),
			uint64(i),
		)
	}
	return &maximaVP{p: p, sorter: cgm.Sorter{W: maximaRecW, Data: data}}
}

type maximaVP struct {
	p      *Maxima3D
	phase  uint64
	sorter cgm.Sorter
	locals []uint64 // local-maxima candidates: (y, z, idx) triples
	result []uint64 // final maxima indices
}

func (vp *maximaVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	switch vp.phase {
	case 0:
		done, err := vp.sorter.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		// Sweep in descending x: a point is a slab-local maximum iff
		// no earlier point strictly dominates its (y, z).
		var st staircase
		data := vp.sorter.Data
		n := len(data) / maximaRecW
		for i := 0; i < n; i++ {
			y, z, idx := data[i*maximaRecW+1], data[i*maximaRecW+2], data[i*maximaRecW+3]
			if !st.dominated(y, z) {
				vp.locals = append(vp.locals, y, z, idx)
				st.insert(y, z)
			}
		}
		env.Charge(int64(n) * 8)
		vp.sorter.Data = nil
		// Broadcast candidates to all lower-x slabs (higher ids).
		if len(vp.locals) > 0 {
			for d := env.ID() + 1; d < env.NumVPs(); d++ {
				env.Send(d, vp.locals)
			}
		}
		vp.phase = 1
		return false, nil
	case 1:
		// Filter own candidates against all higher-x candidates.
		var st staircase
		for _, m := range in {
			for i := 0; i+3 <= len(m.Payload); i += 3 {
				st.insert(m.Payload[i], m.Payload[i+1])
			}
		}
		for i := 0; i+3 <= len(vp.locals); i += 3 {
			if !st.dominated(vp.locals[i], vp.locals[i+1]) {
				vp.result = append(vp.result, vp.locals[i+2])
			}
		}
		env.Charge(int64(len(vp.locals) + 8))
		vp.locals = nil
		vp.phase = 2
		return true, nil
	default:
		return false, fmt.Errorf("cgmgeom: maxima VP stepped after completion")
	}
}

func (vp *maximaVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	vp.sorter.Save(enc)
	enc.PutUints(vp.locals)
	enc.PutUints(vp.result)
}

func (vp *maximaVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	vp.sorter.W = maximaRecW
	vp.sorter.Load(dec)
	vp.locals = dec.Uints()
	vp.result = dec.Uints()
}

// Output returns the sorted original indices of the maximal points.
func (p *Maxima3D) Output(vps []bsp.VP) []int {
	var out []int
	for _, vp := range vps {
		for _, idx := range vp.(*maximaVP).result {
			out = append(out, int(idx))
		}
	}
	sort.Ints(out)
	return out
}
