// Package cgmgeom implements the Group B (GIS and computational
// geometry) workloads of the paper's Table 1 as CGM programs: 3D
// maxima, 2D weighted dominance counting, area of union of
// rectangles, 2D convex hull, lower envelope of non-intersecting
// segments, batched next-element search (vertical ray shooting) and
// 2D all-nearest-neighbors.
//
// All algorithms assume points/coordinates in general position
// (distinct coordinate values); the workload generators in
// internal/bench produce such inputs. Deviations from the exact
// algorithms the paper cites (e.g. ⌈log p⌉ hull merge rounds instead
// of the randomized O(1)-round 3D hull) are documented in DESIGN.md §5
// and surfaced through the measured λ.
package cgmgeom

import (
	"math"
	"sort"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// Point is a point in the plane.
type Point struct {
	X, Y float64
}

// Point3 is a point in space.
type Point3 struct {
	X, Y, Z float64
}

// Rect is an axis-parallel rectangle [X1,X2] × [Y1,Y2].
type Rect struct {
	X1, X2, Y1, Y2 float64
}

// Segment is a line segment from (X1,Y1) to (X2,Y2) with X1 <= X2.
type Segment struct {
	X1, Y1, X2, Y2 float64
}

// staircase maintains the Pareto-maximal set of (y, z) pairs seen so
// far: pairs such that no other inserted pair strictly dominates them
// in both coordinates. It answers "is (y, z) strictly dominated?"
// queries in O(log n). Entries are kept sorted by y ascending, which
// forces z strictly descending.
type staircase struct {
	ys []uint64
	zs []uint64
}

// dominated reports whether some inserted pair has y' > y and z' > z.
func (s *staircase) dominated(y, z uint64) bool {
	// First entry with y' > y; entries are sorted by y with z
	// descending, so that entry has the largest z among all y' > y.
	i := sort.Search(len(s.ys), func(i int) bool { return s.ys[i] > y })
	return i < len(s.ys) && s.zs[i] > z
}

// insert adds (y, z) unless dominated, pruning entries it dominates.
func (s *staircase) insert(y, z uint64) {
	if s.dominated(y, z) {
		return
	}
	// Remove entries with y' < y (hence before the insertion point)
	// and z' < z: they are dominated by the new pair. Those entries
	// form a contiguous run ending just before the insertion point.
	i := sort.Search(len(s.ys), func(i int) bool { return s.ys[i] >= y })
	j := i
	for j > 0 && s.zs[j-1] < z {
		j--
	}
	// Replace [j, i) with the new entry.
	s.ys = append(s.ys[:j], append([]uint64{y}, s.ys[i:]...)...)
	s.zs = append(s.zs[:j], append([]uint64{z}, s.zs[i:]...)...)
}

// Slabber is an embeddable sub-machine establishing a balanced slab
// decomposition of the x-axis: it globally sorts the VPs' local
// records (W words each, keyed by their first word) and then
// broadcasts each VP's first key, so that every VP ends up knowing
// the boundary array b[0..v] with slab i covering keys in
// [b[i], b[i+1]). b[0] = 0 and b[v] = MaxUint64, so the slabs cover
// every key. After completion, Data holds the VP's slab of the sorted
// records. Consumes SlabberSupersteps supersteps.
type Slabber struct {
	// W is the record width (0 is treated as 1: bare keys).
	W int
	// Data holds the VP's local flat records before the first Step
	// and the slab's sorted records after completion.
	Data []uint64
	// Bounds is the boundary array, valid once done (length v+1).
	Bounds []uint64

	sorter  cgm.Sorter
	started bool
	phase   int
}

// SlabberSupersteps is the number of supersteps a Slabber consumes.
const SlabberSupersteps = cgm.SorterSupersteps + 2

func (s *Slabber) width() int {
	if s.W <= 0 {
		return 1
	}
	return s.W
}

// Step advances the slab decomposition, returning true on completion.
func (s *Slabber) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	if !s.started {
		s.sorter = cgm.Sorter{W: s.width(), Data: s.Data}
		s.Data = nil
		s.started = true
	}
	if s.sorter.Active() {
		done, err := s.sorter.Step(env, in)
		if err != nil {
			return false, err
		}
		if done {
			// Broadcast this VP's first key (tagged by our id via
			// Src); empty VPs send nothing.
			if len(s.sorter.Data) > 0 {
				for d := 0; d < env.NumVPs(); d++ {
					env.Send(d, s.sorter.Data[:1])
				}
			}
			s.Data = s.sorter.Data
			s.sorter.Data = nil
		}
		return false, nil
	}
	// Final superstep: assemble boundaries from the broadcasts.
	v := env.NumVPs()
	s.Bounds = make([]uint64, v+1)
	for i := range s.Bounds {
		s.Bounds[i] = ^uint64(0)
	}
	for _, m := range in {
		s.Bounds[m.Src] = m.Payload[0]
	}
	// Empty slabs inherit the next non-empty boundary; slab 0 always
	// starts at the minimum key.
	for i := v - 1; i >= 1; i-- {
		if s.Bounds[i] == ^uint64(0) && s.Bounds[i+1] != ^uint64(0) {
			s.Bounds[i] = s.Bounds[i+1]
		}
	}
	s.Bounds[0] = 0
	s.phase = 1
	return true, nil
}

// SlabOf returns the slab owning key: the largest i with b[i] <= key.
func SlabOf(bounds []uint64, key uint64) int {
	v := len(bounds) - 1
	// First boundary index in [1, v] with b[i] > key; the slab is the
	// one before it.
	i := sort.Search(v-1, func(j int) bool { return bounds[j+1] > key }) // j+1 in [1, v-1]
	return i
}

// SlabRange returns the inclusive slab index range [lo, hi] of slabs
// intersecting the key interval [a, b] (a <= b).
func SlabRange(bounds []uint64, a, b uint64) (lo, hi int) {
	return SlabOf(bounds, a), SlabOf(bounds, b)
}

// Save marshals the Slabber (W is static host configuration).
func (s *Slabber) Save(enc *words.Encoder) {
	enc.PutBool(s.started)
	enc.PutUint(uint64(s.phase))
	enc.PutUints(s.Data)
	enc.PutUints(s.Bounds)
	s.sorter.Save(enc)
}

// Load restores the Slabber; W must already be set by the host.
func (s *Slabber) Load(dec *words.Decoder) {
	s.started = dec.Bool()
	s.phase = int(dec.Uint())
	s.Data = dec.Uints()
	s.Bounds = dec.Uints()
	s.sorter.W = s.width()
	s.sorter.Load(dec)
}

// SaveSize bounds the Slabber's Save output for maxRecs local records.
func (s *Slabber) SaveSize(maxRecs, v int) int {
	st := cgm.Sorter{W: s.width()}
	return 2 + words.SizeUints(maxRecs*s.width()) + words.SizeUints(v+1) + st.SaveSize(maxRecs, v)
}

// BoundFloat decodes a slab boundary key, mapping the MaxUint64
// sentinel (no slab to the right) to +Inf.
func BoundFloat(b uint64) float64 {
	if b == ^uint64(0) {
		return math.Inf(1)
	}
	return cgm.DecodeFloat(b)
}
