package cgmgeom_test

import (
	"math/bits"
	"sort"
	"testing"

	"embsp/internal/alg/algtest"
	"embsp/internal/alg/cgm"
	"embsp/internal/alg/cgmgeom"
	"embsp/internal/bsp"
	"embsp/internal/prng"
)

func randIntervals(r *prng.Rand, n int) []cgmgeom.Segment {
	out := make([]cgmgeom.Segment, n)
	for i := range out {
		x := r.Float64()
		out[i] = cgmgeom.Segment{X1: x, X2: x + 0.01 + r.Float64()*0.5}
	}
	return out
}

func TestSegTree(t *testing.T) {
	r := prng.New(83)
	for _, n := range []int{1, 2, 17, 120} {
		for _, v := range []int{1, 2, 5} {
			intervals := randIntervals(r, n)
			p, err := cgmgeom.NewSegTree(intervals, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 91, func(vps []bsp.VP) []uint64 {
				var out []uint64
				for _, nd := range p.Output(vps) {
					out = append(out, uint64(nd.ID))
					for _, iv := range nd.Intervals {
						out = append(out, uint64(iv))
					}
				}
				return out
			})
			nodes := p.Output(res.VPs)

			// Every interval appears in at most 2·log₂(2n)+2 nodes.
			perInterval := map[int]int{}
			for _, nd := range nodes {
				for _, iv := range nd.Intervals {
					perInterval[iv]++
				}
			}
			bound := 2*bits.Len(uint(4*n)) + 2
			for iv, c := range perInterval {
				if c > bound {
					t.Fatalf("n=%d: interval %d in %d nodes, bound %d", n, iv, c, bound)
				}
			}

			// Stabbing queries agree with brute force.
			var ends []uint64
			for _, s := range intervals {
				ends = append(ends, cgm.EncodeFloat(s.X1), cgm.EncodeFloat(s.X2))
			}
			sort.Slice(ends, func(i, j int) bool { return ends[i] < ends[j] })
			for trial := 0; trial < 60; trial++ {
				x := r.Float64() * 1.5
				got := p.Stab(nodes, ends, x)
				var want []int
				for iv, s := range intervals {
					if s.X1 < x && x < s.X2 {
						want = append(want, iv)
					}
				}
				if len(got) != len(want) {
					t.Fatalf("n=%d v=%d x=%v: %d hits, want %d (%v vs %v)", n, v, x, len(got), len(want), got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("n=%d v=%d x=%v: hit %d = %d, want %d", n, v, x, i, got[i], want[i])
					}
				}
			}
		}
	}
}

func TestSegTreeRejectsBadInterval(t *testing.T) {
	if _, err := cgmgeom.NewSegTree([]cgmgeom.Segment{{X1: 2, X2: 1}}, 1); err == nil {
		t.Error("inverted interval accepted")
	}
}
