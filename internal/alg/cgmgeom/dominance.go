package cgmgeom

import (
	"fmt"
	"sort"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// Dominance2D computes 2D weighted dominance counts: for every point
// p, the sum of the (integer) weights of the points q with q.X < p.X
// and q.Y < p.Y. Coordinates are assumed distinct in each axis.
//
// CGM algorithm (λ = O(1) rounds, the Table 1 "2D-weighted dominance
// counting" row):
//
//  1. Sort by x into x-slabs; each slab computes the within-slab
//     counts with a local y-sweep over a Fenwick tree.
//  2. Sort by y into y-slabs, records tagged with their x-slab. Each
//     y-slab sweeps locally in y order, accumulating per-x-slab weight
//     sums: this yields the contribution of lower y within the same
//     y-slab and strictly lower x-slab, plus the slab's per-x-slab
//     totals.
//  3. One all-to-all of the v per-x-slab total vectors (v² words)
//     lets every y-slab add the contribution of all lower y-slabs.
//  4. Route (index, count) pairs back to the owners of the original
//     indices.
//
// Exactness at slab boundaries relies on x-slabs partitioning by
// strict x order (distinct x) and y-slabs by strict y order (distinct
// y).
type Dominance2D struct {
	v   int
	n   int
	pts []Point
	wts []uint64
}

// NewDominance2D returns the program for points with weights on v
// VPs.
func NewDominance2D(pts []Point, weights []uint64, v int) (*Dominance2D, error) {
	if v <= 0 {
		return nil, fmt.Errorf("cgmgeom: v = %d, want > 0", v)
	}
	if len(weights) != len(pts) {
		return nil, fmt.Errorf("cgmgeom: %d points but %d weights", len(pts), len(weights))
	}
	return &Dominance2D{v: v, n: len(pts), pts: pts, wts: weights}, nil
}

func (p *Dominance2D) NumVPs() int { return p.v }

// Record layouts:
//
//	x-phase: enc(x), enc(y), weight, index            (W = 4)
//	y-phase: enc(y), xslab, weight, index, withinCnt  (W = 5)
const (
	domXW = 4
	domYW = 5
)

func (p *Dominance2D) maxRecs() int { return 3*cgm.MaxPart(p.n, p.v) + p.v }

func (p *Dominance2D) MaxContextWords() int {
	s := cgm.Sorter{W: domYW}
	return 4 + s.SaveSize(p.maxRecs(), p.v) + words.SizeUints(2*p.maxRecs()) + words.SizeUints(p.v) + words.SizeUints(domYW*p.maxRecs())
}

func (p *Dominance2D) MaxCommWords() int {
	sortComm := 3*cgm.MaxPart(p.n, p.v)*domYW + p.v*(p.v*domYW+1) + p.v*((p.v-1)*domYW+1)
	totalsComm := p.v*(p.v+1) + p.v
	routeComm := 2*p.maxRecs()*2 + p.v
	m := sortComm
	if totalsComm > m {
		m = totalsComm
	}
	if routeComm > m {
		m = routeComm
	}
	return m + 16
}

func (p *Dominance2D) NewVP(id int) bsp.VP {
	lo, hi := cgm.Dist(p.n, p.v, id)
	data := make([]uint64, 0, (hi-lo)*domXW)
	for i := lo; i < hi; i++ {
		data = append(data,
			cgm.EncodeFloat(p.pts[i].X),
			cgm.EncodeFloat(p.pts[i].Y),
			p.wts[i],
			uint64(i),
		)
	}
	return &domVP{p: p, sorter: cgm.Sorter{W: domXW, Data: data}}
}

const (
	domPhaseSortX  = 0
	domPhaseSortY  = 1
	domPhaseTotals = 2
	domPhaseRoute  = 3
	domPhaseDone   = 4
)

type domVP struct {
	p      *Dominance2D
	phase  uint64
	sorter cgm.Sorter
	yData  []uint64 // y-phase records awaiting totals: (y, xslab, w, idx, cnt)
	out    []uint64 // (idx, count) pairs for owned indices
}

// fenwick is a small Fenwick (binary indexed) tree over positions
// 1..n for prefix weight sums.
type fenwick []uint64

func newFenwick(n int) fenwick { return make(fenwick, n+1) }

func (f fenwick) add(i int, w uint64) {
	for i++; i < len(f); i += i & (-i) {
		f[i] += w
	}
}

// sum returns the total weight at positions < i (0-based exclusive).
func (f fenwick) sum(i int) uint64 {
	var s uint64
	for ; i > 0; i -= i & (-i) {
		s += f[i]
	}
	return s
}

func (vp *domVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	switch vp.phase {
	case domPhaseSortX:
		done, err := vp.sorter.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		// Within-slab counts: records are x-sorted; sweep in y order,
		// Fenwick over local x rank.
		data := vp.sorter.Data
		n := len(data) / domXW
		order := make([]int, n)
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return data[order[a]*domXW+1] < data[order[b]*domXW+1] })
		f := newFenwick(n)
		within := make([]uint64, n)
		for _, i := range order {
			within[i] = f.sum(i) // strictly smaller x rank, already-seen => smaller y
			f.add(i, data[i*domXW+2])
		}
		env.Charge(int64(n) * 16)
		// Re-key for the y sort, tagging with this x-slab id.
		vp.sorter = cgm.Sorter{W: domYW, Data: make([]uint64, 0, n*domYW)}
		for i := 0; i < n; i++ {
			vp.sorter.Data = append(vp.sorter.Data,
				data[i*domXW+1],  // enc(y)
				uint64(env.ID()), // x-slab
				data[i*domXW+2],  // weight
				data[i*domXW+3],  // original index
				within[i],        // within-slab count so far
			)
		}
		vp.phase = domPhaseSortY
		return false, nil
	case domPhaseSortY:
		done, err := vp.sorter.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		// Sweep local records in y order, accumulating per-x-slab
		// weights: adds the same-y-slab, lower-x-slab contribution.
		data := vp.sorter.Data
		n := len(data) / domYW
		acc := make([]uint64, vp.p.v) // per-x-slab running totals
		for i := 0; i < n; i++ {
			xs := int(data[i*domYW+1])
			var below uint64
			for s := 0; s < xs; s++ {
				below += acc[s]
			}
			data[i*domYW+4] += below
			acc[xs] += data[i*domYW+2]
		}
		env.Charge(int64(n) * int64(vp.p.v))
		vp.yData = data
		vp.sorter.Data = nil
		// Broadcast this y-slab's per-x-slab totals to all VPs.
		payload := append([]uint64{uint64(env.ID())}, acc...)
		for d := 0; d < env.NumVPs(); d++ {
			env.Send(d, payload)
		}
		vp.phase = domPhaseTotals
		return false, nil
	case domPhaseTotals:
		// Sum the totals of all lower y-slabs, cumulative in x-slab.
		v := vp.p.v
		lower := make([]uint64, v) // per-x-slab totals of y-slabs < mine
		for _, m := range in {
			if int(m.Payload[0]) >= env.ID() {
				continue
			}
			for s := 0; s < v; s++ {
				lower[s] += m.Payload[1+s]
			}
		}
		// Prefix in x-slab: cum[t] = Σ_{s<t} lower[s].
		cum := make([]uint64, v+1)
		for s := 0; s < v; s++ {
			cum[s+1] = cum[s] + lower[s]
		}
		// Finalize counts and route them home, batched per owner.
		parts := make([][]uint64, v)
		n := len(vp.yData) / domYW
		for i := 0; i < n; i++ {
			xs := int(vp.yData[i*domYW+1])
			idx := vp.yData[i*domYW+3]
			cnt := vp.yData[i*domYW+4] + cum[xs]
			d := cgm.Owner(vp.p.n, v, int(idx))
			parts[d] = append(parts[d], idx, cnt)
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(n) + int64(v)*int64(v))
		vp.yData = nil
		vp.phase = domPhaseRoute
		return false, nil
	case domPhaseRoute:
		for _, m := range in {
			vp.out = append(vp.out, m.Payload...)
		}
		vp.phase = domPhaseDone
		return true, nil
	default:
		return false, fmt.Errorf("cgmgeom: dominance VP stepped after completion")
	}
}

func (vp *domVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	vp.sorter.Save(enc)
	enc.PutUints(vp.yData)
	enc.PutUints(vp.out)
}

func (vp *domVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	if vp.phase == domPhaseSortX {
		vp.sorter.W = domXW
	} else {
		vp.sorter.W = domYW
	}
	vp.sorter.Load(dec)
	vp.yData = dec.Uints()
	vp.out = dec.Uints()
}

// Output returns the dominance count per original point index.
func (p *Dominance2D) Output(vps []bsp.VP) []uint64 {
	out := make([]uint64, p.n)
	for _, vp := range vps {
		pairs := vp.(*domVP).out
		for i := 0; i+2 <= len(pairs); i += 2 {
			out[pairs[i]] = pairs[i+1]
		}
	}
	return out
}
