package cgmgeom_test

import (
	"math"
	"testing"
	"testing/quick"

	"embsp/internal/alg/algtest"
	"embsp/internal/alg/cgmgeom"
	"embsp/internal/bsp"
	"embsp/internal/prng"
)

func randCrossingSegments(r *prng.Rand, n int) []cgmgeom.Segment {
	out := make([]cgmgeom.Segment, n)
	for i := range out {
		x := r.Float64()
		out[i] = cgmgeom.Segment{
			X1: x, Y1: r.Float64(),
			X2: x + 0.05 + r.Float64()*0.6, Y2: r.Float64(),
		}
	}
	return out
}

// validateEnvelope checks the piece list against the segments by
// random sampling: within a piece the named segment must be lowest
// (within eps), and x values outside every piece must be uncovered.
func validateEnvelope(t *testing.T, segs []cgmgeom.Segment, pieces []cgmgeom.EnvelopePiece, r *prng.Rand) {
	t.Helper()
	const eps = 1e-9
	// Structure: sorted, non-overlapping.
	for i := range pieces {
		if pieces[i].X1 >= pieces[i].X2 {
			t.Fatalf("piece %d is empty: %+v", i, pieces[i])
		}
		if i > 0 && pieces[i].X1 < pieces[i-1].X2-eps {
			t.Fatalf("pieces %d and %d overlap", i-1, i)
		}
	}
	evalAt := func(s cgmgeom.Segment, x float64) float64 {
		return s.Y1 + (s.Y2-s.Y1)*(x-s.X1)/(s.X2-s.X1)
	}
	inPiece := func(x float64) int {
		for i, p := range pieces {
			if p.X1+eps < x && x < p.X2-eps {
				return i
			}
		}
		return -1
	}
	loAll, hiAll := math.Inf(1), math.Inf(-1)
	for _, s := range segs {
		loAll = math.Min(loAll, s.X1)
		hiAll = math.Max(hiAll, s.X2)
	}
	for trial := 0; trial < 400; trial++ {
		x := loAll + r.Float64()*(hiAll-loAll)
		pi := inPiece(x)
		bestY := math.Inf(1)
		best := -1
		for j, s := range segs {
			if s.X1+eps < x && x < s.X2-eps {
				if y := evalAt(s, x); y < bestY {
					bestY, best = y, j
				}
			}
		}
		switch {
		case best == -1 && pi == -1:
			// uncovered both ways (or x within eps of a boundary)
		case best == -1 && pi != -1:
			t.Fatalf("x=%v claimed covered by piece %d but no segment spans it", x, pi)
		case pi == -1:
			// x may sit within eps of a piece boundary; tolerate only
			// if some piece boundary is near.
			near := false
			for _, p := range pieces {
				if math.Abs(p.X1-x) < 1e-6 || math.Abs(p.X2-x) < 1e-6 {
					near = true
				}
			}
			if !near {
				t.Fatalf("x=%v covered by segment %d but no piece claims it", x, best)
			}
		default:
			claimed := segs[pieces[pi].Seg]
			if evalAt(claimed, x) > bestY+1e-6 {
				t.Fatalf("x=%v: piece says segment %d (y=%v) but %d is lower (y=%v)",
					x, pieces[pi].Seg, evalAt(claimed, x), best, bestY)
			}
		}
	}
}

func TestGenEnvelope(t *testing.T) {
	r := prng.New(73)
	for _, n := range []int{1, 2, 10, 60, 150} {
		for _, v := range []int{1, 2, 5} {
			segs := randCrossingSegments(r, n)
			p, err := cgmgeom.NewGenEnvelope(segs, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 79, func(vps []bsp.VP) []uint64 {
				var out []uint64
				for _, pc := range p.Output(vps) {
					out = append(out, math.Float64bits(pc.X1), math.Float64bits(pc.X2), uint64(pc.Seg))
				}
				return out
			})
			validateEnvelope(t, segs, p.Output(res.VPs), r)
		}
	}
}

func TestGenEnvelopeCrossingPair(t *testing.T) {
	// Two segments crossing in the middle: the envelope must switch
	// at the crossing.
	segs := []cgmgeom.Segment{
		{X1: 0, Y1: 0, X2: 10, Y2: 10},
		{X1: 0, Y1: 10, X2: 10, Y2: 0},
	}
	p, err := cgmgeom.NewGenEnvelope(segs, 2)
	if err != nil {
		t.Fatal(err)
	}
	res := algtest.RunRef(t, p, 83)
	pieces := p.Output(res.VPs)
	if len(pieces) != 2 {
		t.Fatalf("pieces = %+v, want 2", pieces)
	}
	if pieces[0].Seg != 0 || pieces[1].Seg != 1 {
		t.Fatalf("piece order %d,%d, want 0,1", pieces[0].Seg, pieces[1].Seg)
	}
	if math.Abs(pieces[0].X2-5) > 1e-9 {
		t.Fatalf("crossing at %v, want 5", pieces[0].X2)
	}
}

func TestGenEnvelopeMatchesSimpleEnvelope(t *testing.T) {
	// On non-crossing inputs the generalized envelope must agree with
	// the specialized one piece for piece.
	r := prng.New(79)
	segs := randSegments(r, 40) // stacked, non-crossing
	gp, err := cgmgeom.NewGenEnvelope(segs, 4)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := cgmgeom.NewEnvelope(segs, 4)
	if err != nil {
		t.Fatal(err)
	}
	gres := algtest.RunRef(t, gp, 89)
	sres := algtest.RunRef(t, sp, 89)
	got := gp.Output(gres.VPs)
	want := sp.Output(sres.VPs)
	if len(got) != len(want) {
		t.Fatalf("%d pieces vs %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Seg != want[i].Seg ||
			math.Abs(got[i].X1-want[i].X1) > 1e-9 ||
			math.Abs(got[i].X2-want[i].X2) > 1e-9 {
			t.Fatalf("piece %d: %+v vs %+v", i, got[i], want[i])
		}
	}
}

func TestGenEnvelopeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		r := prng.New(seed)
		n := r.Intn(50) + 1
		segs := randCrossingSegments(r, n)
		p, err := cgmgeom.NewGenEnvelope(segs, r.Intn(5)+1)
		if err != nil {
			return false
		}
		res, err := bsp.Run(p, bsp.RunOptions{Seed: seed, ValidateContexts: true})
		if err != nil {
			return false
		}
		pieces := p.Output(res.VPs)
		// Spot-validate by sampling (no *testing.T in quick functions).
		const eps = 1e-9
		for trial := 0; trial < 50; trial++ {
			x := r.Float64() * 1.6
			bestY := math.Inf(1)
			covered := false
			for _, s := range segs {
				if s.X1+eps < x && x < s.X2-eps {
					covered = true
					y := s.Y1 + (s.Y2-s.Y1)*(x-s.X1)/(s.X2-s.X1)
					if y < bestY {
						bestY = y
					}
				}
			}
			var pieceY = math.Inf(1)
			inside := false
			nearEdge := false
			for _, pc := range pieces {
				if pc.X1+eps < x && x < pc.X2-eps {
					inside = true
					s := segs[pc.Seg]
					pieceY = s.Y1 + (s.Y2-s.Y1)*(x-s.X1)/(s.X2-s.X1)
				}
				if math.Abs(pc.X1-x) < 1e-6 || math.Abs(pc.X2-x) < 1e-6 {
					nearEdge = true
				}
			}
			if covered != inside && !nearEdge {
				return false
			}
			if inside && pieceY > bestY+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestGenEnvelopeRejectsVertical(t *testing.T) {
	if _, err := cgmgeom.NewGenEnvelope([]cgmgeom.Segment{{X1: 1, X2: 1}}, 1); err == nil {
		t.Error("vertical segment accepted")
	}
}
