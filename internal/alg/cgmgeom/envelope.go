package cgmgeom

import (
	"fmt"
	"math"
	"sort"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// EnvelopePiece is one maximal x-interval [X1, X2) on which segment
// Seg forms the lower envelope.
type EnvelopePiece struct {
	X1, X2 float64
	Seg    int
}

// Envelope computes the lower envelope of n non-intersecting line
// segments (the Table 1 "Lower envelope of non-intersecting line
// segments" row): for each x covered by at least one segment, the
// segment of minimum y at x. The output is the ordered piece list.
//
// CGM algorithm (λ = O(1) rounds): balanced x-slabs from the sorted
// 2n endpoint keys (Slabber), segments replicated into overlapped
// slabs, a local elementary-interval sweep per slab (between
// consecutive endpoint x-values the envelope is a single segment,
// because segments do not cross), and an ordered gather of the pieces
// at VP 0.
type Envelope struct {
	v    int
	n    int
	segs []Segment
}

// NewEnvelope returns the program for the given segments on v VPs.
// Segments must satisfy X1 < X2 (no vertical segments).
func NewEnvelope(segs []Segment, v int) (*Envelope, error) {
	if v <= 0 {
		return nil, fmt.Errorf("cgmgeom: v = %d, want > 0", v)
	}
	for i, s := range segs {
		if !(s.X1 < s.X2) {
			return nil, fmt.Errorf("cgmgeom: segment %d has X1 >= X2", i)
		}
	}
	return &Envelope{v: v, n: len(segs), segs: segs}, nil
}

func (p *Envelope) NumVPs() int { return p.v }

func (p *Envelope) MaxContextWords() int {
	maxKeys := 2 * cgm.MaxPart(p.n, p.v)
	sl := Slabber{}
	return 4 + sl.SaveSize(3*maxKeys+p.v, p.v) + words.SizeUints(5*cgm.MaxPart(p.n, p.v)) + words.SizeUints(3*4*p.n) + 2
}

func (p *Envelope) MaxCommWords() int {
	maxKeys := 2 * cgm.MaxPart(p.n, p.v)
	sortComm := 3*maxKeys + p.v*(p.v+1) + p.v*p.v
	replicate := 5 * cgm.MaxPart(p.n, p.v) * p.v
	recv := 5*p.n + p.v
	pieces := 3 * (4*p.n + 2) // worst-case piece count ~ O(n) per slab boundary effects
	m := sortComm
	for _, c := range []int{replicate, recv, pieces} {
		if c > m {
			m = c
		}
	}
	return m + p.v + 16
}

func (p *Envelope) NewVP(id int) bsp.VP {
	lo, hi := cgm.Dist(p.n, p.v, id)
	keys := make([]uint64, 0, 2*(hi-lo))
	mine := make([]uint64, 0, 5*(hi-lo))
	for i := lo; i < hi; i++ {
		s := p.segs[i]
		keys = append(keys, cgm.EncodeFloat(s.X1), cgm.EncodeFloat(s.X2))
		mine = append(mine,
			math.Float64bits(s.X1), math.Float64bits(s.Y1),
			math.Float64bits(s.X2), math.Float64bits(s.Y2),
			uint64(i))
	}
	return &envVP{p: p, slab: Slabber{Data: keys}, mine: mine}
}

const (
	envPhaseSlab  = 0
	envPhaseSweep = 1
	envPhaseGlue  = 2
)

type envVP struct {
	p      *Envelope
	phase  uint64
	slab   Slabber
	mine   []uint64 // own segments: (x1,y1,x2,y2,idx)
	pieces []uint64 // final glued pieces at VP 0: (x1 bits, x2 bits, idx)
}

func (vp *envVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	switch vp.phase {
	case envPhaseSlab:
		done, err := vp.slab.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		parts := make([][]uint64, env.NumVPs())
		for i := 0; i+5 <= len(vp.mine); i += 5 {
			x1 := math.Float64frombits(vp.mine[i])
			x2 := math.Float64frombits(vp.mine[i+2])
			lo, hi := SlabRange(vp.slab.Bounds, cgm.EncodeFloat(x1), cgm.EncodeFloat(x2))
			for s := lo; s <= hi; s++ {
				parts[s] = append(parts[s], vp.mine[i:i+5]...)
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(len(vp.mine)))
		vp.mine = nil
		vp.phase = envPhaseSweep
		return false, nil
	case envPhaseSweep:
		pieces := vp.sweepSlab(env, in)
		if len(pieces) > 0 {
			env.Send(0, pieces)
		}
		vp.phase = envPhaseGlue
		return false, nil
	case envPhaseGlue:
		if env.ID() == 0 {
			// Messages arrive in slab (source) order; concatenate and
			// merge adjacent pieces of the same segment.
			var all []uint64
			for _, m := range in {
				all = append(all, m.Payload...)
			}
			for i := 0; i+3 <= len(all); i += 3 {
				n := len(vp.pieces)
				if n >= 3 && vp.pieces[n-1] == all[i+2] && vp.pieces[n-2] == all[i] {
					vp.pieces[n-2] = all[i+1] // extend previous piece
					continue
				}
				vp.pieces = append(vp.pieces, all[i:i+3]...)
			}
			env.Charge(int64(len(all)))
		}
		vp.phase = 3
		return true, nil
	default:
		return false, fmt.Errorf("cgmgeom: envelope VP stepped after completion")
	}
}

// sweepSlab computes the envelope pieces within this VP's strip as
// (x1 bits, x2 bits, segIdx) triples in x order.
func (vp *envVP) sweepSlab(env *bsp.Env, in []bsp.Message) []uint64 {
	id := env.ID()
	slabLo := math.Inf(-1)
	if id > 0 {
		slabLo = BoundFloat(vp.slab.Bounds[id])
	}
	slabHi := math.Inf(1)
	if id < env.NumVPs()-1 {
		slabHi = BoundFloat(vp.slab.Bounds[id+1])
	}
	type seg struct {
		x1, y1, x2, y2 float64
		idx            uint64
		cx1, cx2       float64 // clipped x-extent within the strip
	}
	var segs []seg
	var xs []float64
	for _, m := range in {
		for i := 0; i+5 <= len(m.Payload); i += 5 {
			s := seg{
				x1:  math.Float64frombits(m.Payload[i]),
				y1:  math.Float64frombits(m.Payload[i+1]),
				x2:  math.Float64frombits(m.Payload[i+2]),
				y2:  math.Float64frombits(m.Payload[i+3]),
				idx: m.Payload[i+4],
			}
			s.cx1, s.cx2 = s.x1, s.x2
			if s.cx1 < slabLo {
				s.cx1 = slabLo
			}
			if s.cx2 > slabHi {
				s.cx2 = slabHi
			}
			if s.cx1 >= s.cx2 {
				continue
			}
			segs = append(segs, s)
			xs = append(xs, s.cx1, s.cx2)
		}
	}
	if len(segs) == 0 {
		return nil
	}
	sort.Float64s(xs)
	// Deduplicate elementary interval boundaries.
	uniq := xs[:1]
	for _, x := range xs[1:] {
		if x != uniq[len(uniq)-1] {
			uniq = append(uniq, x)
		}
	}
	env.Charge(int64(len(segs)) * int64(len(uniq)))
	var out []uint64
	for i := 0; i+1 < len(uniq); i++ {
		a, b := uniq[i], uniq[i+1]
		mid := a + (b-a)/2
		bestIdx := ^uint64(0)
		bestY := math.Inf(1)
		for _, s := range segs {
			if s.cx1 <= a && s.cx2 >= b {
				y := s.y1 + (s.y2-s.y1)*(mid-s.x1)/(s.x2-s.x1)
				if y < bestY || (y == bestY && s.idx < bestIdx) {
					bestY, bestIdx = y, s.idx
				}
			}
		}
		if bestIdx == ^uint64(0) {
			continue // gap: no segment covers this interval
		}
		n := len(out)
		if n >= 3 && out[n-1] == bestIdx && out[n-2] == math.Float64bits(a) {
			out[n-2] = math.Float64bits(b)
			continue
		}
		out = append(out, math.Float64bits(a), math.Float64bits(b), bestIdx)
	}
	return out
}

func (vp *envVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	vp.slab.Save(enc)
	enc.PutUints(vp.mine)
	enc.PutUints(vp.pieces)
}

func (vp *envVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	vp.slab.Load(dec)
	vp.mine = dec.Uints()
	vp.pieces = dec.Uints()
}

// Output returns the envelope pieces in x order.
func (p *Envelope) Output(vps []bsp.VP) []EnvelopePiece {
	raw := vps[0].(*envVP).pieces
	out := make([]EnvelopePiece, 0, len(raw)/3)
	for i := 0; i+3 <= len(raw); i += 3 {
		out = append(out, EnvelopePiece{
			X1:  math.Float64frombits(raw[i]),
			X2:  math.Float64frombits(raw[i+1]),
			Seg: int(raw[i+2]),
		})
	}
	return out
}
