package cgmgeom

import (
	"fmt"
	"math/bits"
	"sort"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// SegTree builds a segment tree over n intervals in batched fashion
// (the Table 1 "Segment tree construction" row, following the batched
// EM constructions of [5]): the 2n interval endpoints are sorted to
// define elementary slots, every interval is decomposed into its
// O(log n) canonical nodes of a static complete binary tree over the
// slots, and the (node, interval) pairs are sorted by node so that
// each node's interval list is stored contiguously — exactly the
// layout a batched stabbing-query pass consumes.
//
// CGM algorithm (λ = O(1) rounds): one sort of the endpoint records
// (ranks via prefix sums), one route of ranks back to the interval
// owners, a local canonical decomposition, and one sort of the
// (node, interval) pairs.
type SegTree struct {
	v         int
	n         int
	intervals []Segment // Y-fields ignored; [X1, X2] with X1 < X2
}

// NewSegTree returns the program for the given intervals (X1 < X2; Y
// fields ignored) on v VPs.
func NewSegTree(intervals []Segment, v int) (*SegTree, error) {
	if v <= 0 {
		return nil, fmt.Errorf("cgmgeom: v = %d, want > 0", v)
	}
	for i, s := range intervals {
		if !(s.X1 < s.X2) {
			return nil, fmt.Errorf("cgmgeom: interval %d has X1 >= X2", i)
		}
	}
	return &SegTree{v: v, n: len(intervals), intervals: intervals}, nil
}

func (p *SegTree) NumVPs() int { return p.v }

// leaves returns the power-of-two leaf count over the 2n endpoint
// slots (elementary intervals between consecutive endpoint ranks).
func (p *SegTree) leaves() int {
	slots := 2 * p.n
	if slots < 1 {
		slots = 1
	}
	l := 1
	for l < slots {
		l <<= 1
	}
	return l
}

func (p *SegTree) maxPairs() int {
	// Each interval decomposes into at most 2·log₂(leaves) canonical
	// nodes.
	return cgm.MaxPart(p.n, p.v) * (2*bits.Len(uint(p.leaves())) + 2)
}

func (p *SegTree) MaxContextWords() int {
	s2 := cgm.Sorter{W: 2}
	s3 := cgm.Sorter{W: 3}
	return 8 + s2.SaveSize(3*cgm.MaxPart(2*p.n, p.v)+p.v, p.v) +
		s3.SaveSize(3*p.maxPairs()+p.v, p.v) +
		words.SizeUints(4*cgm.MaxPart(p.n, p.v)) + words.SizeUints(3*p.maxPairs())
}

func (p *SegTree) MaxCommWords() int {
	pairSort := 3*p.maxPairs()*3 + p.v*(p.v*3+1) + p.v*((p.v-1)*3+1)
	endSort := 3*cgm.MaxPart(2*p.n, p.v)*2 + p.v*(p.v*2+1) + p.v*((p.v-1)*2+1)
	ranks := 3*cgm.MaxPart(2*p.n, p.v) + p.v
	m := pairSort
	for _, c := range []int{endSort, ranks} {
		if c > m {
			m = c
		}
	}
	return m + 16
}

func (p *SegTree) NewVP(id int) bsp.VP {
	lo, hi := cgm.Dist(p.n, p.v, id)
	recs := make([]uint64, 0, 4*(hi-lo))
	for i := lo; i < hi; i++ {
		s := p.intervals[i]
		// Endpoint records: (key, interval·2+side).
		recs = append(recs,
			cgm.EncodeFloat(s.X1), uint64(i)<<1,
			cgm.EncodeFloat(s.X2), uint64(i)<<1|1)
	}
	return &segTreeVP{p: p, sorter: cgm.Sorter{W: 2, Data: recs}}
}

// SegTree phases.
const (
	stSortEnds = iota // sort endpoint records
	stScan            // exclusive prefix count of sorted endpoints
	stRanks           // route endpoint ranks to interval owners
	stSortPair        // assemble canonical pairs; sort by node
	stDone
)

type segTreeVP struct {
	p      *SegTree
	phase  uint64
	sorter cgm.Sorter
	scan   cgm.Scan
	lo     []uint64 // endpoint ranks for owned intervals
	hi     []uint64
	have   []uint64 // 0..2 ranks received per owned interval
}

func (vp *segTreeVP) ownRange(env *bsp.Env) (int, int) {
	return cgm.Dist(vp.p.n, env.NumVPs(), env.ID())
}

func (vp *segTreeVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	v := env.NumVPs()
	switch vp.phase {
	case stSortEnds:
		done, err := vp.sorter.Step(env, in)
		if err != nil {
			return false, err
		}
		if done {
			vp.scan = cgm.Scan{Value: uint64(len(vp.sorter.Data) / 2)}
			vp.phase = stScan
		}
		return false, nil

	case stScan:
		done, err := vp.scan.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		// Route each endpoint's global rank to its interval's owner.
		parts := make([][]uint64, v)
		for i := 0; i*2 < len(vp.sorter.Data); i++ {
			tag := vp.sorter.Data[i*2+1]
			rank := vp.scan.Prefix + uint64(i)
			d := cgm.Owner(vp.p.n, v, int(tag>>1))
			parts[d] = append(parts[d], tag, rank)
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		vp.sorter.Data = nil
		vp.phase = stRanks
		return false, nil

	case stRanks:
		olo, ohi := vp.ownRange(env)
		vp.lo = make([]uint64, ohi-olo)
		vp.hi = make([]uint64, ohi-olo)
		vp.have = make([]uint64, ohi-olo)
		for _, m := range in {
			p := m.Payload
			for i := 0; i+2 <= len(p); i += 2 {
				tag, rank := p[i], p[i+1]
				j := int(tag>>1) - olo
				if tag&1 == 0 {
					vp.lo[j] = rank
				} else {
					vp.hi[j] = rank
				}
				vp.have[j]++
			}
		}
		// Canonical decomposition over the static complete tree: the
		// interval covers elementary slots [lo, hi-1] (slot i spans
		// endpoint ranks i..i+1, so the closed interval covers slots
		// lo..hi-1).
		leaves := vp.p.leaves()
		var pairs []uint64
		for j := 0; j < ohi-olo; j++ {
			if vp.have[j] != 2 {
				return false, fmt.Errorf("cgmgeom: interval %d received %d ranks", olo+j, vp.have[j])
			}
			canonicalNodes(leaves, int(vp.lo[j]), int(vp.hi[j])-1, func(node int) {
				pairs = append(pairs, uint64(node), uint64(olo+j), 0)
			})
		}
		env.Charge(int64(len(pairs)))
		vp.sorter = cgm.Sorter{W: 3, Data: pairs}
		vp.phase = stSortPair
		return vp.Step(env, nil)

	case stSortPair:
		done, err := vp.sorter.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		vp.phase = stDone
		return true, nil

	default:
		return false, fmt.Errorf("cgmgeom: segment-tree VP stepped after completion")
	}
}

// canonicalNodes emits the canonical node decomposition of slot range
// [l, r] in a complete binary tree with the given leaf count: nodes
// are numbered heap-style (root 1; leaves leaves..2·leaves-1).
func canonicalNodes(leaves, l, r int, emit func(node int)) {
	if l > r {
		return
	}
	l += leaves
	r += leaves + 1
	for l < r {
		if l&1 == 1 {
			emit(l)
			l++
		}
		if r&1 == 1 {
			r--
			emit(r)
		}
		l >>= 1
		r >>= 1
	}
}

func (vp *segTreeVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	vp.sorter.Save(enc)
	vp.scan.Save(enc)
	enc.PutUints(vp.lo)
	enc.PutUints(vp.hi)
	enc.PutUints(vp.have)
}

func (vp *segTreeVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	if vp.phase <= stScan {
		vp.sorter.W = 2
	} else {
		vp.sorter.W = 3
	}
	vp.sorter.Load(dec)
	vp.scan.Load(dec)
	vp.lo = dec.Uints()
	vp.hi = dec.Uints()
	vp.have = dec.Uints()
}

// Node is one segment-tree node with its interval list.
type Node struct {
	ID        int
	Intervals []int
}

// Output returns the tree's non-empty nodes in node order, each with
// its contiguous interval list — the batched segment-tree layout.
func (p *SegTree) Output(vps []bsp.VP) []Node {
	var flat []uint64
	for _, vp := range vps {
		flat = append(flat, vp.(*segTreeVP).sorter.Data...)
	}
	var out []Node
	for i := 0; i+3 <= len(flat); i += 3 {
		node, iv := int(flat[i]), int(flat[i+1])
		if len(out) == 0 || out[len(out)-1].ID != node {
			out = append(out, Node{ID: node})
		}
		out[len(out)-1].Intervals = append(out[len(out)-1].Intervals, iv)
	}
	return out
}

// Stab returns the intervals containing x, answered from the built
// tree the canonical way: walking the root-to-leaf path of x's
// elementary slot. sortedEnds must be the sorted endpoint keys
// (EncodeFloat order); it locates the slot.
func (p *SegTree) Stab(nodes []Node, sortedEnds []uint64, x float64) []int {
	key := cgm.EncodeFloat(x)
	slot := sort.Search(len(sortedEnds), func(i int) bool { return sortedEnds[i] > key }) - 1
	if slot < 0 || slot >= 2*p.n-1 {
		return nil
	}
	byID := make(map[int]*Node, len(nodes))
	for i := range nodes {
		byID[nodes[i].ID] = &nodes[i]
	}
	var out []int
	for node := p.leaves() + slot; node >= 1; node >>= 1 {
		if nd, ok := byID[node]; ok {
			out = append(out, nd.Intervals...)
		}
	}
	sort.Ints(out)
	return out
}
