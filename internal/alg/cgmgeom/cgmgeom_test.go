package cgmgeom_test

import (
	"math"
	"sort"
	"testing"

	"embsp/internal/alg/algtest"
	"embsp/internal/alg/cgmgeom"
	"embsp/internal/bsp"
	"embsp/internal/prng"
)

func randPts3(r *prng.Rand, n int) []cgmgeom.Point3 {
	out := make([]cgmgeom.Point3, n)
	for i := range out {
		out[i] = cgmgeom.Point3{X: r.Float64(), Y: r.Float64(), Z: r.Float64()}
	}
	return out
}

func randPts(r *prng.Rand, n int) []cgmgeom.Point {
	out := make([]cgmgeom.Point, n)
	for i := range out {
		out[i] = cgmgeom.Point{X: r.Float64(), Y: r.Float64()}
	}
	return out
}

func bruteMaxima3(pts []cgmgeom.Point3) []int {
	var out []int
	for i, p := range pts {
		maximal := true
		for j, q := range pts {
			if i != j && q.X > p.X && q.Y > p.Y && q.Z > p.Z {
				maximal = false
				break
			}
		}
		if maximal {
			out = append(out, i)
		}
	}
	return out
}

func intsToWords(s []int) []uint64 {
	out := make([]uint64, len(s))
	for i, x := range s {
		out[i] = uint64(int64(x))
	}
	return out
}

func TestMaxima3D(t *testing.T) {
	r := prng.New(2)
	for _, n := range []int{0, 1, 2, 30, 150} {
		for _, v := range []int{1, 3, 6} {
			pts := randPts3(r, n)
			p, err := cgmgeom.NewMaxima3D(pts, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 3, func(vps []bsp.VP) []uint64 { return intsToWords(p.Output(vps)) })
			got := p.Output(res.VPs)
			want := bruteMaxima3(pts)
			if len(got) != len(want) {
				t.Fatalf("n=%d v=%d: %d maxima, want %d", n, v, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d v=%d: maxima[%d] = %d, want %d", n, v, i, got[i], want[i])
				}
			}
		}
	}
}

func bruteDominance(pts []cgmgeom.Point, w []uint64) []uint64 {
	out := make([]uint64, len(pts))
	for i, p := range pts {
		for j, q := range pts {
			if q.X < p.X && q.Y < p.Y {
				out[i] += w[j]
			}
		}
	}
	return out
}

func TestDominance2D(t *testing.T) {
	r := prng.New(5)
	for _, n := range []int{0, 1, 2, 40, 130} {
		for _, v := range []int{1, 2, 5} {
			pts := randPts(r, n)
			w := make([]uint64, n)
			for i := range w {
				w[i] = uint64(r.Intn(10) + 1)
			}
			p, err := cgmgeom.NewDominance2D(pts, w, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 17, func(vps []bsp.VP) []uint64 { return p.Output(vps) })
			got := p.Output(res.VPs)
			want := bruteDominance(pts, w)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d v=%d: dom[%d] = %d, want %d", n, v, i, got[i], want[i])
				}
			}
		}
	}
}

func bruteUnionArea(rects []cgmgeom.Rect) float64 {
	// Coordinate-compressed grid accumulation.
	var xs, ys []float64
	for _, r := range rects {
		xs = append(xs, r.X1, r.X2)
		ys = append(ys, r.Y1, r.Y2)
	}
	sort.Float64s(xs)
	sort.Float64s(ys)
	area := 0.0
	for i := 0; i+1 < len(xs); i++ {
		if xs[i] == xs[i+1] {
			continue
		}
		mx := xs[i] + (xs[i+1]-xs[i])/2
		for j := 0; j+1 < len(ys); j++ {
			if ys[j] == ys[j+1] {
				continue
			}
			my := ys[j] + (ys[j+1]-ys[j])/2
			for _, r := range rects {
				if r.X1 <= mx && mx <= r.X2 && r.Y1 <= my && my <= r.Y2 {
					area += (xs[i+1] - xs[i]) * (ys[j+1] - ys[j])
					break
				}
			}
		}
	}
	return area
}

func randRects(r *prng.Rand, n int) []cgmgeom.Rect {
	out := make([]cgmgeom.Rect, n)
	for i := range out {
		x, y := r.Float64(), r.Float64()
		out[i] = cgmgeom.Rect{X1: x, X2: x + 0.01 + r.Float64()*0.3, Y1: y, Y2: y + 0.01 + r.Float64()*0.3}
	}
	return out
}

func TestRectUnion(t *testing.T) {
	r := prng.New(7)
	for _, n := range []int{0, 1, 2, 25, 80} {
		for _, v := range []int{1, 2, 5} {
			rects := randRects(r, n)
			p, err := cgmgeom.NewRectUnion(rects, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 23, func(vps []bsp.VP) []uint64 {
				return []uint64{math.Float64bits(p.Output(vps))}
			})
			got := p.Output(res.VPs)
			want := bruteUnionArea(rects)
			if diff := math.Abs(got - want); diff > 1e-9*(1+want) {
				t.Fatalf("n=%d v=%d: area = %v, want %v", n, v, got, want)
			}
		}
	}
}

func bruteHull(pts []cgmgeom.Point) map[int]bool {
	n := len(pts)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		if pts[idx[a]].X != pts[idx[b]].X {
			return pts[idx[a]].X < pts[idx[b]].X
		}
		return pts[idx[a]].Y < pts[idx[b]].Y
	})
	cross := func(a, b, c cgmgeom.Point) float64 {
		return (b.X-a.X)*(c.Y-a.Y) - (b.Y-a.Y)*(c.X-a.X)
	}
	build := func(lower bool) []int {
		var h []int
		for _, i := range idx {
			for len(h) >= 2 {
				c := cross(pts[h[len(h)-2]], pts[h[len(h)-1]], pts[i])
				if (lower && c > 0) || (!lower && c < 0) {
					break
				}
				h = h[:len(h)-1]
			}
			h = append(h, i)
		}
		return h
	}
	set := make(map[int]bool)
	for _, i := range build(true) {
		set[i] = true
	}
	for _, i := range build(false) {
		set[i] = true
	}
	return set
}

func TestHull2D(t *testing.T) {
	r := prng.New(11)
	for _, n := range []int{1, 2, 3, 50, 200} {
		for _, v := range []int{1, 2, 4, 7} {
			pts := randPts(r, n)
			p, err := cgmgeom.NewHull2D(pts, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 29, func(vps []bsp.VP) []uint64 { return intsToWords(p.Output(vps)) })
			got := p.Output(res.VPs)
			want := bruteHull(pts)
			if len(got) != len(want) {
				t.Fatalf("n=%d v=%d: hull has %d vertices, want %d", n, v, len(got), len(want))
			}
			for _, i := range got {
				if !want[i] {
					t.Fatalf("n=%d v=%d: vertex %d not on reference hull", n, v, i)
				}
			}
			if res.Costs.Supersteps != p.Lambda() {
				t.Errorf("n=%d v=%d: λ = %d, want %d", n, v, res.Costs.Supersteps, p.Lambda())
			}
			if n >= 3 && !ccw(pts, got) {
				t.Errorf("n=%d v=%d: hull not in CCW order: %v", n, v, got)
			}
		}
	}
}

// ccw checks the output ordering is counter-clockwise (positive area).
func ccw(pts []cgmgeom.Point, hull []int) bool {
	area := 0.0
	for i := range hull {
		a, b := pts[hull[i]], pts[hull[(i+1)%len(hull)]]
		area += a.X*b.Y - b.X*a.Y
	}
	return area > 0
}

func randSegments(r *prng.Rand, n int) []cgmgeom.Segment {
	// Non-crossing segments: horizontal-ish segments at distinct
	// heights never intersect.
	out := make([]cgmgeom.Segment, n)
	for i := range out {
		x := r.Float64()
		y := float64(i) + r.Float64()*0.4
		out[i] = cgmgeom.Segment{X1: x, Y1: y, X2: x + 0.05 + r.Float64()*0.4, Y2: y + r.Float64()*0.1}
	}
	return out
}

func bruteEnvelope(segs []cgmgeom.Segment) []cgmgeom.EnvelopePiece {
	var xs []float64
	for _, s := range segs {
		xs = append(xs, s.X1, s.X2)
	}
	sort.Float64s(xs)
	uniq := xs[:0]
	for i, x := range xs {
		if i == 0 || x != xs[i-1] {
			uniq = append(uniq, x)
		}
	}
	var out []cgmgeom.EnvelopePiece
	for i := 0; i+1 < len(uniq); i++ {
		a, b := uniq[i], uniq[i+1]
		mid := a + (b-a)/2
		best := -1
		bestY := math.Inf(1)
		for j, s := range segs {
			if s.X1 <= a && s.X2 >= b {
				y := s.Y1 + (s.Y2-s.Y1)*(mid-s.X1)/(s.X2-s.X1)
				if y < bestY || (y == bestY && j < best) {
					bestY, best = y, j
				}
			}
		}
		if best < 0 {
			continue
		}
		if n := len(out); n > 0 && out[n-1].Seg == best && out[n-1].X2 == a {
			out[n-1].X2 = b
			continue
		}
		out = append(out, cgmgeom.EnvelopePiece{X1: a, X2: b, Seg: best})
	}
	return out
}

func TestEnvelope(t *testing.T) {
	r := prng.New(13)
	for _, n := range []int{1, 2, 20, 60} {
		for _, v := range []int{1, 2, 5} {
			segs := randSegments(r, n)
			p, err := cgmgeom.NewEnvelope(segs, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 31, func(vps []bsp.VP) []uint64 {
				var out []uint64
				for _, pc := range p.Output(vps) {
					out = append(out, math.Float64bits(pc.X1), math.Float64bits(pc.X2), uint64(pc.Seg))
				}
				return out
			})
			got := p.Output(res.VPs)
			want := bruteEnvelope(segs)
			if len(got) != len(want) {
				t.Fatalf("n=%d v=%d: %d pieces, want %d\n got: %v\nwant: %v", n, v, len(got), len(want), got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d v=%d: piece %d = %+v, want %+v", n, v, i, got[i], want[i])
				}
			}
		}
	}
}

func TestNextElement(t *testing.T) {
	r := prng.New(17)
	for _, n := range []int{0, 1, 25} {
		for _, q := range []int{0, 1, 40} {
			for _, v := range []int{1, 3, 5} {
				segs := make([]cgmgeom.HSegment, n)
				for i := range segs {
					x := r.Float64()
					segs[i] = cgmgeom.HSegment{X1: x, X2: x + r.Float64()*0.5, Y: r.Float64()}
				}
				queries := randPts(r, q)
				p, err := cgmgeom.NewNextElement(segs, queries, v)
				if err != nil {
					t.Fatal(err)
				}
				res := algtest.RunAll(t, p, 37, func(vps []bsp.VP) []uint64 { return intsToWords(p.Output(vps)) })
				got := p.Output(res.VPs)
				for i, pt := range queries {
					want := -1
					bestY := math.Inf(1)
					for j, s := range segs {
						if s.X1 <= pt.X && pt.X <= s.X2 && s.Y > pt.Y && s.Y < bestY {
							bestY, want = s.Y, j
						}
					}
					if got[i] != want {
						t.Fatalf("n=%d q=%d v=%d: query %d = %d, want %d", n, q, v, i, got[i], want)
					}
				}
			}
		}
	}
}

func TestNextElementTrapezoids(t *testing.T) {
	r := prng.New(18)
	segs := make([]cgmgeom.HSegment, 30)
	for i := range segs {
		x := r.Float64()
		segs[i] = cgmgeom.HSegment{X1: x, X2: x + r.Float64()*0.5, Y: r.Float64()}
	}
	queries := randPts(r, 50)
	p, err := cgmgeom.NewNextElement(segs, queries, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := algtest.RunRef(t, p, 38)
	above, below := p.Trapezoids(res.VPs)
	for i, pt := range queries {
		wantAbove, wantBelow := -1, -1
		bestUp, bestDown := math.Inf(1), math.Inf(-1)
		for j, s := range segs {
			if s.X1 <= pt.X && pt.X <= s.X2 {
				if s.Y > pt.Y && s.Y < bestUp {
					bestUp, wantAbove = s.Y, j
				}
				if s.Y < pt.Y && s.Y > bestDown {
					bestDown, wantBelow = s.Y, j
				}
			}
		}
		if above[i] != wantAbove || below[i] != wantBelow {
			t.Fatalf("query %d: trapezoid (%d,%d), want (%d,%d)", i, above[i], below[i], wantAbove, wantBelow)
		}
	}
}

func bruteNN(pts []cgmgeom.Point) []int {
	out := make([]int, len(pts))
	for i := range out {
		out[i] = -1
		best := math.Inf(1)
		for j, q := range pts {
			if i == j {
				continue
			}
			dx, dy := q.X-pts[i].X, q.Y-pts[i].Y
			d := dx*dx + dy*dy
			if d < best {
				best, out[i] = d, j
			}
		}
	}
	return out
}

func TestNN2D(t *testing.T) {
	r := prng.New(19)
	for _, n := range []int{0, 1, 2, 30, 120} {
		for _, v := range []int{1, 2, 4, 7} {
			pts := randPts(r, n)
			p, err := cgmgeom.NewNN2D(pts, v)
			if err != nil {
				t.Fatal(err)
			}
			res := algtest.RunAll(t, p, 41, func(vps []bsp.VP) []uint64 { return intsToWords(p.Output(vps)) })
			got := p.Output(res.VPs)
			want := bruteNN(pts)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d v=%d: nn[%d] = %d, want %d", n, v, i, got[i], want[i])
				}
			}
		}
	}
}

// Clustered points force multi-slab NN refinement: a point whose
// neighbor lies several empty slabs away.
func TestNN2DFarNeighbors(t *testing.T) {
	pts := []cgmgeom.Point{
		{X: 0.01, Y: 0.5}, {X: 0.02, Y: 0.5},
		{X: 10.0, Y: 0.5}, // isolated: neighbor is far left
		{X: 0.03, Y: 0.52}, {X: 0.015, Y: 0.48},
		{X: 20.0, Y: 0.5}, // even more isolated
	}
	p, err := cgmgeom.NewNN2D(pts, 4)
	if err != nil {
		t.Fatal(err)
	}
	res := algtest.RunAll(t, p, 43, func(vps []bsp.VP) []uint64 { return intsToWords(p.Output(vps)) })
	got := p.Output(res.VPs)
	want := bruteNN(pts)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nn[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}
