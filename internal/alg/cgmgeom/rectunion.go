package cgmgeom

import (
	"fmt"
	"math"
	"sort"

	"embsp/internal/alg/cgm"
	"embsp/internal/bsp"
	"embsp/internal/words"
)

// RectUnion computes the area of the union of n axis-parallel
// rectangles (the Table 1 "Area of union of rectangles" row).
//
// CGM algorithm (λ = O(1) rounds): establish balanced x-slabs from
// the sorted 2n rectangle x-endpoints (Slabber), replicate every
// rectangle into each slab it overlaps, sweep each slab locally
// (events sorted by x, active y-interval coverage), and sum the slab
// areas at VP 0. Slab strips partition the plane, so no area is
// counted twice. Worst-case replication is Θ(n·v) when rectangles
// span many slabs (documented in DESIGN.md §5).
type RectUnion struct {
	v     int
	n     int
	rects []Rect
}

// NewRectUnion returns the program for the given rectangles on v VPs.
func NewRectUnion(rects []Rect, v int) (*RectUnion, error) {
	if v <= 0 {
		return nil, fmt.Errorf("cgmgeom: v = %d, want > 0", v)
	}
	for i, r := range rects {
		if r.X1 > r.X2 || r.Y1 > r.Y2 {
			return nil, fmt.Errorf("cgmgeom: rectangle %d is inverted", i)
		}
	}
	return &RectUnion{v: v, n: len(rects), rects: rects}, nil
}

func (p *RectUnion) NumVPs() int { return p.v }

func (p *RectUnion) MaxContextWords() int {
	maxKeys := 2 * cgm.MaxPart(p.n, p.v) // two endpoints per rect
	sl := Slabber{}
	// Slabber state, own rectangles, replicated slab rectangles
	// (worst case all), area word, phase.
	return 4 + sl.SaveSize(3*maxKeys+p.v, p.v) + words.SizeUints(4*cgm.MaxPart(p.n, p.v)) + words.SizeUints(4*p.n) + 2
}

func (p *RectUnion) MaxCommWords() int {
	maxKeys := 2 * cgm.MaxPart(p.n, p.v)
	sortComm := 3*maxKeys + p.v*(p.v+1) + p.v*p.v
	replicate := 4*cgm.MaxPart(p.n, p.v)*p.v + p.v // worst case: all rects to all slabs
	recv := 4*p.n + p.v                            // worst case: a slab receives every rect
	m := sortComm
	if replicate > m {
		m = replicate
	}
	if recv > m {
		m = recv
	}
	return m + p.v + 16
}

func (p *RectUnion) NewVP(id int) bsp.VP {
	lo, hi := cgm.Dist(p.n, p.v, id)
	keys := make([]uint64, 0, 2*(hi-lo))
	mine := make([]uint64, 0, 4*(hi-lo))
	for i := lo; i < hi; i++ {
		r := p.rects[i]
		keys = append(keys, cgm.EncodeFloat(r.X1), cgm.EncodeFloat(r.X2))
		mine = append(mine,
			math.Float64bits(r.X1), math.Float64bits(r.Y1),
			math.Float64bits(r.X2), math.Float64bits(r.Y2))
	}
	return &rectVP{p: p, slab: Slabber{Data: keys}, mine: mine}
}

const (
	rectPhaseSlab  = 0
	rectPhaseSweep = 1
	rectPhaseSum   = 2
	rectPhaseDone  = 3
)

type rectVP struct {
	p     *RectUnion
	phase uint64
	slab  Slabber
	mine  []uint64 // own rectangles: (x1,y1,x2,y2) float bits
	area  float64  // valid at VP 0 after completion
}

func (vp *rectVP) Step(env *bsp.Env, in []bsp.Message) (bool, error) {
	switch vp.phase {
	case rectPhaseSlab:
		done, err := vp.slab.Step(env, in)
		if err != nil {
			return false, err
		}
		if !done {
			return false, nil
		}
		// Replicate each rectangle to every slab it overlaps, batched
		// per destination.
		parts := make([][]uint64, env.NumVPs())
		for i := 0; i+4 <= len(vp.mine); i += 4 {
			x1 := math.Float64frombits(vp.mine[i])
			x2 := math.Float64frombits(vp.mine[i+2])
			lo, hi := SlabRange(vp.slab.Bounds, cgm.EncodeFloat(x1), cgm.EncodeFloat(x2))
			for s := lo; s <= hi; s++ {
				parts[s] = append(parts[s], vp.mine[i:i+4]...)
			}
		}
		for d, part := range parts {
			if len(part) > 0 {
				env.Send(d, part)
			}
		}
		env.Charge(int64(len(vp.mine)))
		vp.mine = nil
		vp.phase = rectPhaseSweep
		return false, nil
	case rectPhaseSweep:
		area := vp.sweepSlab(env, in)
		env.Send(0, []uint64{math.Float64bits(area)})
		vp.phase = rectPhaseSum
		return false, nil
	case rectPhaseSum:
		if env.ID() == 0 {
			// Messages arrive sorted by source, so the float sum
			// order is deterministic.
			for _, m := range in {
				vp.area += math.Float64frombits(m.Payload[0])
			}
		}
		vp.phase = rectPhaseDone
		return true, nil
	default:
		return false, fmt.Errorf("cgmgeom: rect-union VP stepped after completion")
	}
}

// sweepSlab computes the union area restricted to this VP's x-strip.
func (vp *rectVP) sweepSlab(env *bsp.Env, in []bsp.Message) float64 {
	id := env.ID()
	slabLo := math.Inf(-1)
	if id > 0 {
		slabLo = cgm.DecodeFloat(vp.slab.Bounds[id])
	}
	slabHi := math.Inf(1)
	// A MaxUint64 bound marks "no slab to the right" (trailing empty
	// slabs); this strip then extends to +Inf.
	if id < env.NumVPs()-1 && vp.slab.Bounds[id+1] != ^uint64(0) {
		slabHi = cgm.DecodeFloat(vp.slab.Bounds[id+1])
	}
	type event struct {
		x      float64
		open   bool
		y1, y2 float64
	}
	var events []event
	for _, m := range in {
		for i := 0; i+4 <= len(m.Payload); i += 4 {
			x1 := math.Float64frombits(m.Payload[i])
			y1 := math.Float64frombits(m.Payload[i+1])
			x2 := math.Float64frombits(m.Payload[i+2])
			y2 := math.Float64frombits(m.Payload[i+3])
			if x1 < slabLo {
				x1 = slabLo
			}
			if x2 > slabHi {
				x2 = slabHi
			}
			if x1 >= x2 {
				continue // zero width within this strip
			}
			events = append(events, event{x1, true, y1, y2}, event{x2, false, y1, y2})
		}
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].x != events[j].x {
			return events[i].x < events[j].x
		}
		if events[i].open != events[j].open {
			return !events[i].open // closes first at equal x (dx = 0 anyway)
		}
		if events[i].y1 != events[j].y1 {
			return events[i].y1 < events[j].y1
		}
		return events[i].y2 < events[j].y2
	})
	env.Charge(int64(len(events)) * 8)

	type span struct{ y1, y2 float64 }
	var active []span
	covered := func() float64 {
		if len(active) == 0 {
			return 0
		}
		sorted := append([]span(nil), active...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].y1 < sorted[j].y1 })
		total := 0.0
		curLo, curHi := sorted[0].y1, sorted[0].y2
		for _, s := range sorted[1:] {
			if s.y1 > curHi {
				total += curHi - curLo
				curLo, curHi = s.y1, s.y2
			} else if s.y2 > curHi {
				curHi = s.y2
			}
		}
		return total + (curHi - curLo)
	}

	area := 0.0
	for i := 0; i < len(events); {
		x := events[i].x
		for i < len(events) && events[i].x == x {
			ev := events[i]
			if ev.open {
				active = append(active, span{ev.y1, ev.y2})
			} else {
				for j, s := range active {
					if s.y1 == ev.y1 && s.y2 == ev.y2 {
						active = append(active[:j], active[j+1:]...)
						break
					}
				}
			}
			i++
		}
		if i < len(events) {
			area += covered() * (events[i].x - x)
		}
		env.Charge(int64(len(active)) * 4)
	}
	return area
}

func (vp *rectVP) Save(enc *words.Encoder) {
	enc.PutUint(vp.phase)
	vp.slab.Save(enc)
	enc.PutUints(vp.mine)
	enc.PutFloat(vp.area)
}

func (vp *rectVP) Load(dec *words.Decoder) {
	vp.phase = dec.Uint()
	vp.slab.Load(dec)
	vp.mine = dec.Uints()
	vp.area = dec.Float()
}

// Output returns the union area (held by VP 0).
func (p *RectUnion) Output(vps []bsp.VP) float64 {
	return vps[0].(*rectVP).area
}
