// Package workload is the shared registry of named Table 1 workloads.
// A Spec identifies a workload by name and shape (problem size, VP
// count, input seed) and builds it deterministically: the same Spec
// always yields the same Program over the same input, which is what
// lets a job daemon rebuild an in-flight job's Program after a crash
// and resume its journal, and what lets the chaos soak and the CLI
// share one table instead of three hand-copied ones.
package workload

import (
	"fmt"
	"hash/fnv"
	"sort"

	"embsp"
	"embsp/internal/prng"
	"embsp/internal/words"
)

// Spec names one workload instance. Building the same Spec twice — in
// another process, after a daemon restart — yields the same Program
// over the same deterministically drawn input.
type Spec struct {
	// Alg is the workload name; see Names.
	Alg string `json:"alg"`
	// N is the problem size (records, points, nodes ...).
	N int `json:"n"`
	// V is the number of virtual processors.
	V int `json:"v"`
	// Seed keys the deterministic input generator.
	Seed uint64 `json:"seed"`
}

// Instance is a built workload: the Program plus its result describer.
type Instance struct {
	// Program is the BSP program for the spec.
	Program embsp.Program
	// Describe summarizes a completed run's output in one line (and
	// performs the workload's cheap self-check, e.g. sortedness).
	Describe func(*embsp.Result) string
}

type entry struct {
	name  string
	build func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error)
}

// table lists every named workload: the 13 Table 1 rows plus the LCA
// and expression-tree graph workloads the CLI has always exposed.
func table() []entry {
	return []entry{
		{"sort", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			keys := make([]uint64, n)
			for i := range keys {
				keys[i] = r.Uint64()
			}
			p, err := embsp.NewSort(keys, 1, v)
			return p, func(res *embsp.Result) string {
				out := p.Output(res.VPs)
				for i := 1; i < len(out); i++ {
					if out[i-1] > out[i] {
						return "FAILED: output not sorted"
					}
				}
				return fmt.Sprintf("%d keys sorted", len(out))
			}, err
		}},
		{"permute", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			vals := make([]uint64, n)
			for i := range vals {
				vals[i] = uint64(i)
			}
			p, err := embsp.NewPermute(vals, r.Perm(n), v)
			return p, func(res *embsp.Result) string {
				return fmt.Sprintf("%d records routed", len(p.Output(res.VPs)))
			}, err
		}},
		{"transpose", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			rows := 4
			for rows > 1 && n/rows < 1 {
				rows /= 2
			}
			keys := make([]uint64, rows*(n/rows))
			for i := range keys {
				keys[i] = r.Uint64()
			}
			p, err := embsp.NewTranspose(keys, rows, n/rows, v)
			return p, func(res *embsp.Result) string {
				return fmt.Sprintf("%d matrix entries transposed", len(p.Output(res.VPs)))
			}, err
		}},
		{"maxima", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			pts := make([]embsp.Point3, n)
			for i := range pts {
				pts[i] = embsp.Point3{X: r.Float64(), Y: r.Float64(), Z: r.Float64()}
			}
			p, err := embsp.NewMaxima3D(pts, v)
			return p, func(res *embsp.Result) string {
				return fmt.Sprintf("%d maximal points", len(p.Output(res.VPs)))
			}, err
		}},
		{"dominance", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			pts := make([]embsp.Point, n)
			vals := make([]uint64, n)
			for i := range pts {
				pts[i] = embsp.Point{X: r.Float64(), Y: r.Float64()}
				vals[i] = uint64(i)
			}
			p, err := embsp.NewDominance2D(pts, vals, v)
			return p, func(res *embsp.Result) string {
				return fmt.Sprintf("%d dominance counts", len(p.Output(res.VPs)))
			}, err
		}},
		{"rectunion", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			rects := make([]embsp.Rect, n)
			for i := range rects {
				x, y := r.Float64(), r.Float64()
				rects[i] = embsp.Rect{X1: x, X2: x + r.Float64(), Y1: y, Y2: y + r.Float64()}
			}
			p, err := embsp.NewRectUnion(rects, v)
			return p, func(res *embsp.Result) string {
				return fmt.Sprintf("union area %.6g", p.Output(res.VPs))
			}, err
		}},
		{"hull", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			pts := make([]embsp.Point, n)
			for i := range pts {
				pts[i] = embsp.Point{X: r.Float64(), Y: r.Float64()}
			}
			p, err := embsp.NewHull2D(pts, v)
			return p, func(res *embsp.Result) string {
				return fmt.Sprintf("hull has %d vertices", len(p.Output(res.VPs)))
			}, err
		}},
		{"envelope", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			segs := make([]embsp.Segment, n)
			for i := range segs {
				x := 3 * float64(i)
				segs[i] = embsp.Segment{X1: x, Y1: r.Float64(), X2: x + 2, Y2: r.Float64()}
			}
			p, err := embsp.NewEnvelope(segs, v)
			return p, func(res *embsp.Result) string {
				return fmt.Sprintf("%d envelope pieces", len(p.Output(res.VPs)))
			}, err
		}},
		{"nextelement", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			hsegs := make([]embsp.HSegment, n)
			pts := make([]embsp.Point, n)
			for i := range hsegs {
				x := r.Float64()
				hsegs[i] = embsp.HSegment{X1: x, X2: x + 0.2, Y: r.Float64()}
				pts[i] = embsp.Point{X: r.Float64(), Y: r.Float64()}
			}
			p, err := embsp.NewNextElement(hsegs, pts, v)
			return p, func(res *embsp.Result) string {
				return fmt.Sprintf("%d next-element queries answered", len(p.Output(res.VPs)))
			}, err
		}},
		{"nn", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			pts := make([]embsp.Point, n)
			for i := range pts {
				pts[i] = embsp.Point{X: r.Float64(), Y: r.Float64()}
			}
			p, err := embsp.NewNN2D(pts, v)
			return p, func(res *embsp.Result) string {
				return fmt.Sprintf("%d nearest neighbors found", len(p.Output(res.VPs)))
			}, err
		}},
		{"listrank", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			perm := r.Perm(n)
			succ := make([]int, n)
			for i := range succ {
				succ[i] = -1
			}
			for i := 0; i+1 < n; i++ {
				succ[perm[i]] = perm[i+1]
			}
			p, err := embsp.NewListRank(succ, nil, v)
			return p, func(res *embsp.Result) string {
				return fmt.Sprintf("%d nodes ranked", len(p.Output(res.VPs)))
			}, err
		}},
		{"euler", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			p, err := embsp.NewEulerTour(n, RandomTree(r, n), v)
			return p, func(res *embsp.Result) string {
				info := p.Output(res.VPs)
				maxDepth := 0
				for _, d := range info.Depth {
					if d > maxDepth {
						maxDepth = d
					}
				}
				return fmt.Sprintf("tree rooted; height %d", maxDepth)
			}, err
		}},
		{"cc", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			edges := make([][2]int, 0, 2*n)
			for len(edges) < 2*n {
				a, b := r.Intn(n), r.Intn(n)
				if a != b {
					edges = append(edges, [2]int{a, b})
				}
			}
			p, err := embsp.NewCC(n, edges, v)
			return p, func(res *embsp.Result) string {
				comps := map[int]bool{}
				for _, l := range p.Output(res.VPs) {
					comps[l] = true
				}
				return fmt.Sprintf("%d components, %d forest edges, %d Borůvka rounds",
					len(comps), len(p.Forest(res.VPs)), p.Rounds(res.VPs))
			}, err
		}},
		{"lca", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			edges := RandomTree(r, n)
			queries := make([][2]int, n)
			for i := range queries {
				queries[i] = [2]int{r.Intn(n), r.Intn(n)}
			}
			p, err := embsp.NewLCA(n, edges, queries, v)
			return p, func(res *embsp.Result) string {
				return fmt.Sprintf("%d LCA queries answered", len(p.Output(res.VPs)))
			}, err
		}},
		{"expr", func(n, v int, r *prng.Rand) (embsp.Program, func(*embsp.Result) string, error) {
			parent, kind, value := randomExpr(r, n)
			p, err := embsp.NewExprTree(parent, kind, value, v)
			return p, func(res *embsp.Result) string {
				return fmt.Sprintf("expression value %d", p.Output(res.VPs))
			}, err
		}},
	}
}

// Machine builds the standard CLI machine shape for a built program:
// per-processor memory scaled off the program's context footprint
// (M = mFactor·µ) and the default cost parameters over block size b.
// embsp-run and embsp-cluster must agree on this mapping exactly —
// the cluster's bitwise-identity check replays the same flags through
// the in-process engine.
func Machine(prog embsp.Program, p, d, b, mFactor int, g float64) embsp.MachineConfig {
	return embsp.MachineConfig{
		P: p, M: mFactor * prog.MaxContextWords(), D: d, B: b, G: g,
		Cost: embsp.CostParams{GUnit: 1, GPkt: float64(b), Pkt: b, L: 100},
	}
}

// Names returns the registered workload names, sorted.
func Names() []string {
	t := table()
	names := make([]string, len(t))
	for i, e := range t {
		names[i] = e.name
	}
	sort.Strings(names)
	return names
}

// Table1Names returns the names of the 13 Table 1 workloads (the soak
// and bench set), in table order.
func Table1Names() []string {
	return []string{"sort", "permute", "transpose", "maxima", "dominance", "rectunion",
		"hull", "envelope", "nextelement", "nn", "listrank", "euler", "cc"}
}

// Validate checks the spec's shape without building it.
func (s Spec) Validate() error {
	found := false
	for _, e := range table() {
		if e.name == s.Alg {
			found = true
			break
		}
	}
	if !found {
		return fmt.Errorf("workload: unknown workload %q; available: %v", s.Alg, Names())
	}
	if s.N < 2 {
		return fmt.Errorf("workload: n = %d, want >= 2", s.N)
	}
	if s.V < 1 {
		return fmt.Errorf("workload: v = %d, want >= 1", s.V)
	}
	return nil
}

// Build constructs the workload deterministically from the spec.
func (s Spec) Build() (*Instance, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	for _, e := range table() {
		if e.name != s.Alg {
			continue
		}
		p, describe, err := e.build(s.N, s.V, prng.New(s.Seed))
		if err != nil {
			return nil, err
		}
		return &Instance{Program: p, Describe: describe}, nil
	}
	panic("unreachable: Validate checked the name")
}

// RandomTree draws a uniformly attached random tree on n nodes as an
// edge list (every node i > 0 attaches to a random earlier node).
func RandomTree(r *prng.Rand, n int) [][2]int {
	edges := make([][2]int, 0, n-1)
	for i := 1; i < n; i++ {
		edges = append(edges, [2]int{r.Intn(i), i})
	}
	return edges
}

// randomExpr draws a random binary +/× expression tree with nLeaves
// leaves holding small values.
func randomExpr(r *prng.Rand, nLeaves int) (parent []int, kind []uint8, value []uint64) {
	parent = []int{-1}
	kind = []uint8{embsp.OpLeaf}
	value = []uint64{r.Uint64() % 100}
	if nLeaves <= 1 {
		return
	}
	leaves := []int{0}
	for len(leaves) < nLeaves {
		li := r.Intn(len(leaves))
		node := leaves[li]
		if r.Bool() {
			kind[node] = embsp.OpAdd
		} else {
			kind[node] = embsp.OpMul
		}
		for c := 0; c < 2; c++ {
			parent = append(parent, node)
			kind = append(kind, embsp.OpLeaf)
			value = append(value, r.Uint64()%100)
			if c == 0 {
				leaves[li] = len(parent) - 1
			} else {
				leaves = append(leaves, len(parent)-1)
			}
		}
	}
	return
}

// Fingerprint digests a Result into one comparable value: the marshaled
// context of every final VP (the bitwise-identity contract's ground
// truth), the BSP model costs and the EM statistics — with
// EMStats.Overlap zeroed first, since overlap is wall-clock
// observability explicitly outside that contract. Two runs of the same
// Spec on the same machine configuration — clean, fault-injected,
// killed-and-resumed, pipelined or serial — must produce equal
// fingerprints; the job daemon stores it per job so a crash-resumed
// daemon's results can be checked against clean one-shot runs.
func Fingerprint(res *embsp.Result) uint64 {
	h := fnv.New64a()
	enc := words.NewEncoder(nil)
	var buf [8]byte
	for _, vp := range res.VPs {
		enc.Reset()
		vp.Save(enc)
		for _, w := range enc.Words() {
			putWord(&buf, w)
			h.Write(buf[:])
		}
		// Separate VPs so context boundaries shift the digest.
		fmt.Fprintf(h, "|")
	}
	em := res.EM
	em.Overlap = embsp.OverlapStats{}
	em.StoreBackend = ""
	em.Tiers = nil
	fmt.Fprintf(h, "%+v%+v", res.Costs, em)
	return h.Sum64()
}

func putWord(buf *[8]byte, w uint64) {
	for i := 0; i < 8; i++ {
		buf[i] = byte(w >> (8 * i))
	}
}
