// Package redundancy adds erasure-coded drive redundancy to the
// simulated disk subsystem: rotated XOR parity groups across the D
// drives of one processor (RAID-5 style), giving single-drive-failure
// tolerance at a storage overhead of one parity track per D-1 data
// tracks instead of the 2× of full mirroring.
//
// The layer slots between the fault-injection layer (internal/fault)
// and a disk.Store. Data tracks keep their identity mapping — Alloc,
// Release and ReserveRot forward unchanged, so the engines' layout
// (standard consecutive and standard linked formats) is untouched —
// while parity tracks are allocated from the same store, interleaved
// with client allocations exactly as the fault layer's mirror copies
// are.
//
// Parity is maintained at compound-superstep granularity, which is the
// natural RAID-5 variant for a BSP-style engine: tracks written during
// a superstep are grouped into stripes and their parity written at the
// barrier (FlushParity — one full-stripe write per D-1 fresh tracks),
// while rewrites and releases of already-striped tracks update parity
// incrementally with the classic read-modify-write small-write penalty
// (the old data is read back, charged as a real parallel I/O, before
// it is overwritten). The parity value of a touched stripe is cached
// in memory between the touch and the barrier, so one stripe costs at
// most one parity read and one parity write per superstep no matter
// how often its members change.
//
// On top of the parity groups the layer provides:
//
//   - degraded-mode reads: a read of a track whose drive has died, or
//     whose content fails its recorded checksum, is served by XOR-ing
//     the stripe's surviving D-1 members. Every extra parallel I/O
//     this costs is a real charged operation, surfaced in the
//     ReconstructedBlocks / DegradedOps counters;
//   - a background scrub: a cursor walks the physical tracks between
//     supersteps, re-reads checksummed tracks, and repairs latent
//     corruption from parity. The cursor is part of EncodeState, so a
//     crash-resumed run continues scrubbing where it left off;
//   - online rebuild: after a permanent drive death the dead drive's
//     striped tracks are reconstructed onto spare capacity of the
//     survivors while the program keeps running, a bounded number of
//     tracks per barrier; progress is journaled and resumable.
//
// All map iterations that cause I/O or enter encoded state are sorted,
// so the layer preserves the repository's bitwise-determinism
// guarantees.
package redundancy

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"embsp/internal/disk"
	"embsp/internal/obs"
	"embsp/internal/words"
)

// Mode selects the drive-redundancy scheme of a run.
type Mode int

const (
	// None runs without redundancy: a permanent drive loss is fatal.
	None Mode = iota
	// Mirror keeps a full copy of every written track on a partner
	// drive (2× storage, one extra write op per write op).
	Mirror
	// Parity keeps one rotated XOR parity track per stripe of D-1 data
	// tracks (1/(D-1) storage overhead, superstep-batched parity
	// writes).
	Parity
)

// String returns the mode's flag spelling.
func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Mirror:
		return "mirror"
	case Parity:
		return "parity"
	}
	return fmt.Sprintf("redundancy.Mode(%d)", int(m))
}

// ParseMode parses a -redundancy flag value.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "none":
		return None, nil
	case "mirror":
		return Mirror, nil
	case "parity":
		return Parity, nil
	}
	return None, fmt.Errorf("redundancy: unknown mode %q (want none, mirror or parity)", s)
}

type addr struct{ d, t int }

func addrLess(a, b addr) bool {
	if a.d != b.d {
		return a.d < b.d
	}
	return a.t < b.t
}

// stripe is one parity group: at most one member track per data drive
// (never on the parity drive), so any single member is the XOR of the
// parity track and the other members.
type stripe struct {
	parity  disk.Addr // parity track location
	members []int     // member track per logical drive, -1 = none
	count   int
}

func (st *stripe) full(D int) bool { return st.count >= D-1 }

// Counters reports the layer's redundancy accounting. All figures
// except the two gauges are monotone over the run; Restore does not
// roll them back (work a replayed superstep spent really happened).
type Counters struct {
	// ChecksumFailures counts tracks whose stored content failed the
	// recorded checksum when read back (latent at-rest corruption,
	// detected by a degraded read or by the scrub).
	ChecksumFailures int64
	// RepairedBlocks counts tracks rewritten with data reconstructed
	// from parity (scrub repairs plus read-path repairs).
	RepairedBlocks int64
	// ReconstructedBlocks counts blocks served or repaired by XOR-ing
	// the stripe's surviving members instead of reading the track.
	ReconstructedBlocks int64
	// DegradedOps counts the extra charged parallel I/O operations
	// spent serving reads and writes in degraded mode (reconstruction
	// reads, collision splits of remapped tracks, repair rewrites).
	DegradedOps int64
	// ParityOps counts the charged parallel I/O operations spent
	// maintaining parity: barrier flushes, read-old-data small writes,
	// and parity track loads.
	ParityOps int64
	// ParityBlocks is the number of parity tracks currently allocated
	// (a gauge: the storage overhead of the scheme).
	ParityBlocks int64
	// StripedBlocks is the number of data tracks currently protected
	// by a stripe (a gauge).
	StripedBlocks int64
	// ScrubbedBlocks counts tracks whose checksum the scrub verified;
	// ScrubRepairs counts the corrupt ones it repaired from parity.
	ScrubbedBlocks int64
	ScrubRepairs   int64
	// RebuiltBlocks counts dead-drive tracks reconstructed onto spare
	// capacity of the surviving drives by the online rebuild.
	RebuiltBlocks int64
}

// Add accumulates other into c (for multi-processor aggregation).
func (c *Counters) Add(other Counters) {
	c.ChecksumFailures += other.ChecksumFailures
	c.RepairedBlocks += other.RepairedBlocks
	c.ReconstructedBlocks += other.ReconstructedBlocks
	c.DegradedOps += other.DegradedOps
	c.ParityOps += other.ParityOps
	c.ParityBlocks += other.ParityBlocks
	c.StripedBlocks += other.StripedBlocks
	c.ScrubbedBlocks += other.ScrubbedBlocks
	c.ScrubRepairs += other.ScrubRepairs
	c.RebuiltBlocks += other.RebuiltBlocks
}

// Publish folds the counters into the metrics registry under parity_*
// names, with Add semantics so multi-processor runs aggregate (the
// two gauges sum across processors, like EMStats does). A nil
// registry is a no-op.
func (c Counters) Publish(r *obs.Registry) {
	if r == nil {
		return
	}
	r.Counter("parity_checksum_failures").Add(c.ChecksumFailures)
	r.Counter("parity_repaired_blocks").Add(c.RepairedBlocks)
	r.Counter("parity_reconstructed_blocks").Add(c.ReconstructedBlocks)
	r.Counter("parity_degraded_ops").Add(c.DegradedOps)
	r.Counter("parity_ops").Add(c.ParityOps)
	r.Counter("parity_blocks").Add(c.ParityBlocks)
	r.Counter("parity_striped_blocks").Add(c.StripedBlocks)
	r.Counter("parity_scrubbed_blocks").Add(c.ScrubbedBlocks)
	r.Counter("parity_scrub_repairs").Add(c.ScrubRepairs)
	r.Counter("parity_rebuilt_blocks").Add(c.RebuiltBlocks)
}

// Store implements disk.Store over an inner store, adding rotated XOR
// parity. All methods are safe for concurrent use: the parity
// directories and RMW arithmetic serialize on an internal mutex
// (physical D-parallelism lives below, inside one inner-store
// operation), so concurrent operations see the same deterministic
// stripe state in whatever order they land, and pure pass-throughs
// (Alloc, Stats, Sync, ...) rely on the inner store's own safety.
type Store struct {
	inner disk.Store
	D, B  int

	mu sync.Mutex // guards all stripe/parity/remap state below

	stripeOf map[addr]int // logical data track -> stripe id
	stripes  map[int]*stripe
	parityAt map[addr]int // physical parity track -> stripe id
	open     []int        // non-full stripe ids, ascending
	next     int          // next stripe id; also the parity rotation counter

	pval   map[int][]uint64 // cached current parity value (authoritative)
	pdirty map[int]bool     // stripes whose cached parity needs write-back

	fresh map[addr]bool      // written but not yet striped data tracks
	sums  map[addr]uint64    // physical track -> checksum of last write
	remap map[addr]disk.Addr // dead-drive logical track -> live physical
	rrmap map[addr]addr      // inverse of remap (physical -> logical)
	dead  []bool

	// rmwOld caches the barrier-committed content of striped members
	// rewritten in place during the current superstep, keyed by
	// physical track. After a superstep rollback the physical track
	// already holds replayed data the stored parity does not encode,
	// so parity arithmetic must use this copy for any member the
	// current attempt has not rewritten yet. Dropped at FlushParity;
	// deliberately NOT part of Snapshot/Restore (it must survive the
	// rollback that makes it necessary).
	rmwOld map[addr][]uint64
	// wrote marks physical tracks written by the current attempt;
	// Restore clears it (a rollback starts a new attempt).
	wrote map[addr]bool
	// recompute marks stripes whose stored parity is known stale after
	// a crash-resume (Reconcile found residue it could not repair or
	// recompute immediately: a torn member, or one on a dead drive not
	// yet rebuilt). Incremental parity maintenance is suspended for
	// these stripes and reads needing their parity fail loudly;
	// FlushParity recomputes each one from its members as soon as every
	// member is readable again. Like rmwOld it describes physical state
	// rather than superstep state, so it survives Restore and is not
	// part of Snapshot or EncodeState (it only exists between a
	// crash-resume and the barrier that clears it).
	recompute map[int]bool

	scrubD, scrubT int // scrub cursor (physical walk)
	rebDrive       int // drive being rebuilt, -1 when none
	rebTrack       int // next dead-drive track to examine
	rebParity      int // next stripe id to check for a lost parity track

	ctr Counters
}

// Wrap layers parity redundancy over a store. Parity requires at least
// two drives (one data drive plus a rotated parity drive).
func Wrap(inner disk.Store) (*Store, error) {
	cfg := inner.Config()
	if cfg.D < 2 {
		return nil, fmt.Errorf("redundancy: parity requires D >= 2, have D = %d", cfg.D)
	}
	return &Store{
		inner:     inner,
		D:         cfg.D,
		B:         cfg.B,
		stripeOf:  make(map[addr]int),
		stripes:   make(map[int]*stripe),
		parityAt:  make(map[addr]int),
		pval:      make(map[int][]uint64),
		pdirty:    make(map[int]bool),
		fresh:     make(map[addr]bool),
		sums:      make(map[addr]uint64),
		remap:     make(map[addr]disk.Addr),
		rrmap:     make(map[addr]addr),
		dead:      make([]bool, cfg.D),
		rmwOld:    make(map[addr][]uint64),
		wrote:     make(map[addr]bool),
		recompute: make(map[int]bool),
		rebDrive:  -1,
	}, nil
}

// Config returns the underlying configuration.
func (s *Store) Config() disk.Config { return s.inner.Config() }

// Stats returns the underlying I/O statistics (parity maintenance,
// reconstruction and rebuild traffic are all real charged operations
// and appear here).
func (s *Store) Stats() disk.Stats { return s.inner.Stats() }

// ResetStats resets the underlying statistics. Redundancy counters are
// untouched (they are run-wide, not per-phase).
func (s *Store) ResetStats() { s.inner.ResetStats() }

// Counters returns the redundancy accounting.
func (s *Store) Counters() Counters {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ctr
}

// Rebuilding reports whether an online rebuild is still in progress.
func (s *Store) Rebuilding() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rebDrive >= 0
}

// DriveDied marks drive d permanently dead and schedules the online
// rebuild. The fault layer calls it at the moment of a scheduled drive
// death; from then on the Store never issues inner I/O against d —
// reads are reconstructed from parity or served from rebuilt copies,
// writes land on spare capacity of the survivors.
func (s *Store) DriveDied(d int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d < 0 || d >= s.D || s.dead[d] {
		return
	}
	s.dead[d] = true
	if s.rebDrive < 0 {
		s.rebDrive = d
		s.rebTrack = 0
		s.rebParity = 0
	}
}

// Alloc forwards to the inner allocator: allocation is directory
// metadata and never faults; I/O on a dead drive's tracks is remapped
// at operation time.
func (s *Store) Alloc(d int) int { return s.inner.Alloc(d) }

// ReserveRot forwards to the inner allocator.
func (s *Store) ReserveRot(nBlocks, rot int) disk.Area { return s.inner.ReserveRot(nBlocks, rot) }

// AllocSnapshot forwards to the inner allocator (the Store's own
// rollback state is captured separately via Snapshot).
func (s *Store) AllocSnapshot() disk.AllocMark { return s.inner.AllocSnapshot() }

// AllocRestore forwards to the inner allocator.
func (s *Store) AllocRestore(m disk.AllocMark) { s.inner.AllocRestore(m) }

// State forwards to the inner store.
func (s *Store) State() disk.StoreState { return s.inner.State() }

// AdoptState forwards to the inner store.
func (s *Store) AdoptState(st disk.StoreState) error { return s.inner.AdoptState(st) }

// Sync forwards to the inner store. The engines call FlushParity
// first, so everything a commit record references — parity included —
// is durable before the record lands.
func (s *Store) Sync() error { return s.inner.Sync() }

// Close forwards to the inner store.
func (s *Store) Close() error { return s.inner.Close() }

// parityUsable reports whether the stripe's parity track is readable.
func (s *Store) parityUsable(st *stripe) bool { return !s.dead[st.parity.Disk] }

// parityActive reports whether the stripe's parity can be maintained
// incrementally: its parity track is on a live drive and it is not
// awaiting a post-crash recomputation.
func (s *Store) parityActive(sid int) bool {
	return s.parityUsable(s.stripes[sid]) && !s.recompute[sid]
}

// chooseSpare returns a live drive other than d, rotated by salt so
// remapped and rebuilt tracks spread over the survivors.
func (s *Store) chooseSpare(d, salt int) (int, bool) {
	for i := 0; i < s.D; i++ {
		c := (d + 1 + salt + i) % s.D
		if c != d && !s.dead[c] {
			return c, true
		}
	}
	return 0, false
}

// groupsOf partitions n requests (physical drive given by driveAt)
// into maximal runs with pairwise-distinct drives, preserving order —
// the extra groups are the degradation the model charges for.
func groupsOf(n int, driveAt func(int) int) [][]int {
	var groups [][]int
	var cur []int
	seen := make(map[int]bool)
	for i := 0; i < n; i++ {
		d := driveAt(i)
		if seen[d] {
			groups = append(groups, cur)
			cur = nil
			seen = make(map[int]bool)
		}
		seen[d] = true
		cur = append(cur, i)
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

// readPhys issues physical reads grouped into valid parallel
// operations, transparently repairing tracks the inner store reports
// as corrupt (File's torn-write detection). It returns the number of
// operations issued.
func (s *Store) readPhys(reqs []disk.ReadReq) (int, error) {
	groups := groupsOf(len(reqs), func(i int) int { return reqs[i].Disk })
	ops := 0
	for _, g := range groups {
		sub := make([]disk.ReadReq, 0, len(g))
		for _, i := range g {
			sub = append(sub, reqs[i])
		}
		for try := 0; ; try++ {
			err := s.inner.ReadOp(sub)
			ops++
			if err == nil {
				break
			}
			var cte *disk.CorruptTrackError
			if !errors.As(err, &cte) || try > len(sub) {
				return ops, err
			}
			s.ctr.ChecksumFailures++
			rops, rerr := s.repairTrack(addr{cte.Disk, cte.Track})
			ops += rops
			if rerr != nil {
				return ops, rerr
			}
		}
	}
	return ops, nil
}

// writePhys issues physical writes grouped into valid parallel
// operations and records their checksums. It returns the number of
// operations issued.
func (s *Store) writePhys(reqs []disk.WriteReq) (int, error) {
	groups := groupsOf(len(reqs), func(i int) int { return reqs[i].Disk })
	ops := 0
	for _, g := range groups {
		sub := make([]disk.WriteReq, 0, len(g))
		for _, i := range g {
			sub = append(sub, reqs[i])
		}
		if err := s.inner.WriteOp(sub); err != nil {
			return ops, err
		}
		ops++
	}
	for _, r := range reqs {
		s.sums[addr{r.Disk, r.Track}] = disk.Checksum(r.Src)
	}
	return ops, nil
}

// physOf maps a logical data track to the physical location currently
// holding its bytes. The second result is false when no physical copy
// exists (dead drive, not remapped) and the data must be
// reconstructed.
func (s *Store) physOf(k addr) (disk.Addr, bool) {
	if m, ok := s.remap[k]; ok {
		return m, true
	}
	if s.dead[k.d] {
		return disk.Addr{}, false
	}
	return disk.Addr{Disk: k.d, Track: k.t}, true
}

// loadParity ensures the stripe's current parity value is cached,
// reading (and verifying) the parity track if needed.
func (s *Store) loadParity(sid int) error {
	if _, ok := s.pval[sid]; ok {
		return nil
	}
	st := s.stripes[sid]
	if !s.parityUsable(st) {
		return fmt.Errorf("redundancy: parity of stripe %d is on dead drive %d", sid, st.parity.Disk)
	}
	buf := make([]uint64, s.B)
	ops, err := s.readParityTrack(sid, buf)
	s.ctr.ParityOps += int64(ops)
	if err != nil {
		return err
	}
	s.pval[sid] = buf
	return nil
}

// readParityTrack reads the stripe's stored parity into dst, verifying
// its recorded checksum and recomputing it from the members when the
// stored copy is corrupt.
func (s *Store) readParityTrack(sid int, dst []uint64) (int, error) {
	st := s.stripes[sid]
	p := addr{st.parity.Disk, st.parity.Track}
	ops, err := s.readPhys([]disk.ReadReq{{Disk: p.d, Track: p.t, Dst: dst}})
	if err != nil {
		return ops, err
	}
	if want, ok := s.sums[p]; ok && disk.Checksum(dst) != want {
		s.ctr.ChecksumFailures++
		n, err := s.repairTrack(p)
		ops += n
		if err != nil {
			return ops, err
		}
		n, err = s.readPhys([]disk.ReadReq{{Disk: p.d, Track: p.t, Dst: dst}})
		ops += n
		if err != nil {
			return ops, err
		}
	}
	return ops, nil
}

// reconstruct XORs the stripe's parity value with every member other
// than skip, yielding skip's data. All other members are readable (a
// stripe never has two members on one logical drive, and only one
// drive can be dead). The charged operations are counted as
// DegradedOps by the caller via the returned op count.
func (s *Store) reconstruct(sid int, skip addr, dst []uint64) (int, error) {
	st := s.stripes[sid]
	if s.recompute[sid] {
		// The stored parity is known stale (crash residue Reconcile
		// could not absorb) and will only be recomputed at the next
		// barrier; reconstructing from it would return silent garbage.
		return 0, fmt.Errorf("redundancy: cannot reconstruct drive %d track %d: stripe %d's parity is stale after a crash and awaits recomputation", skip.d, skip.t, sid)
	}
	ops := 0
	if pv, ok := s.pval[sid]; ok {
		copy(dst, pv)
	} else {
		if !s.parityUsable(st) {
			return 0, fmt.Errorf("redundancy: cannot reconstruct drive %d track %d: stripe %d's parity is on dead drive %d", skip.d, skip.t, sid, st.parity.Disk)
		}
		n, err := s.readParityTrack(sid, dst)
		ops += n
		if err != nil {
			return ops, err
		}
	}
	var reqs []disk.ReadReq
	var bufs [][]uint64
	for d := 0; d < s.D; d++ {
		t := st.members[d]
		if t < 0 || (d == skip.d && t == skip.t) {
			continue
		}
		p, ok := s.physOf(addr{d, t})
		if !ok {
			return ops, fmt.Errorf("redundancy: two lost members in stripe %d (drive %d track %d and drive %d track %d)", sid, skip.d, skip.t, d, t)
		}
		pk := addr{p.Disk, p.Track}
		if old, ok := s.rmwOld[pk]; ok && !s.wrote[pk] {
			// Rewritten in place this superstep but not yet by the
			// current attempt: the parity state still encodes the
			// barrier value, which only the cache holds.
			for i := range dst {
				dst[i] ^= old[i]
			}
			continue
		}
		buf := make([]uint64, s.B)
		bufs = append(bufs, buf)
		reqs = append(reqs, disk.ReadReq{Disk: p.Disk, Track: p.Track, Dst: buf})
	}
	n, err := s.readPhys(reqs)
	ops += n
	if err != nil {
		return ops, err
	}
	for _, b := range bufs {
		for i := range dst {
			dst[i] ^= b[i]
		}
	}
	s.ctr.ReconstructedBlocks++
	return ops, nil
}

// repairTrack rewrites the physical track p with data reconstructed
// from its stripe, returning the operations spent. It handles both
// data tracks (reconstructed from parity and siblings) and parity
// tracks (recomputed from the members). The recorded checksum is the
// repair target, so a successful repair restores exactly the
// last-written content.
func (s *Store) repairTrack(p addr) (int, error) {
	buf := make([]uint64, s.B)
	if sid, ok := s.parityAt[p]; ok {
		// A parity track: the cached value, when present, is
		// authoritative (it may carry this superstep's pending updates,
		// which a recompute from the members would discard); only an
		// uncached stripe is recomputed.
		ops := 0
		if pv, cached := s.pval[sid]; cached {
			copy(buf, pv)
		} else {
			var err error
			ops, err = s.recomputeParity(sid, buf)
			if err != nil {
				return ops, err
			}
		}
		n, err := s.writePhys([]disk.WriteReq{{Disk: p.d, Track: p.t, Src: buf}})
		ops += n
		if err != nil {
			return ops, err
		}
		delete(s.pdirty, sid) // the stored copy now matches the cache
		s.ctr.RepairedBlocks++
		return ops, nil
	}
	logical := p
	if l, ok := s.rrmap[p]; ok {
		logical = l
	}
	sid, ok := s.stripeOf[logical]
	if !ok {
		return 0, fmt.Errorf("redundancy: cannot repair unprotected track (drive %d track %d)", p.d, p.t)
	}
	ops, err := s.reconstruct(sid, logical, buf)
	if err != nil {
		return ops, err
	}
	if want, ok := s.sums[p]; ok && disk.Checksum(buf) != want {
		return ops, fmt.Errorf("redundancy: reconstruction of drive %d track %d does not match its recorded checksum", p.d, p.t)
	}
	n, err := s.writePhys([]disk.WriteReq{{Disk: p.d, Track: p.t, Src: buf}})
	ops += n
	if err != nil {
		return ops, err
	}
	s.ctr.RepairedBlocks++
	return ops, nil
}

// recomputeParity XORs the current data of every member of the stripe
// into dst (reading members from their physical locations).
func (s *Store) recomputeParity(sid int, dst []uint64) (int, error) {
	st := s.stripes[sid]
	clear(dst)
	var reqs []disk.ReadReq
	var bufs [][]uint64
	for d := 0; d < s.D; d++ {
		t := st.members[d]
		if t < 0 {
			continue
		}
		p, ok := s.physOf(addr{d, t})
		if !ok {
			return 0, fmt.Errorf("redundancy: recomputing parity of stripe %d: member on dead drive %d not yet rebuilt", sid, d)
		}
		if old, ok := s.rmwOld[addr{p.Disk, p.Track}]; ok {
			// The stored parity being recomputed encodes the barrier
			// state; a member rewritten in place this superstep
			// contributes its barrier-committed value (already verified
			// when it was captured).
			for i := range dst {
				dst[i] ^= old[i]
			}
			continue
		}
		buf := make([]uint64, s.B)
		bufs = append(bufs, buf)
		reqs = append(reqs, disk.ReadReq{Disk: p.Disk, Track: p.Track, Dst: buf})
	}
	ops, err := s.readPhys(reqs)
	if err != nil {
		return ops, err
	}
	// Verify the members before folding them in: recomputing parity
	// from a corrupt member would launder the corruption into parity
	// that then "verifies".
	for i, r := range reqs {
		if want, ok := s.sums[addr{r.Disk, r.Track}]; ok && disk.Checksum(bufs[i]) != want {
			return ops, fmt.Errorf("redundancy: recomputing parity of stripe %d: member drive %d track %d fails its checksum", sid, r.Disk, r.Track)
		}
	}
	for _, b := range bufs {
		for i := range dst {
			dst[i] ^= b[i]
		}
	}
	return ops, nil
}

// ReadOp performs one parallel read. Live tracks are read directly
// (verifying recorded checksums and repairing latent corruption from
// parity); dead-drive tracks are served from their rebuilt copy or
// reconstructed from the stripe's surviving members; blank tracks read
// as zeros, exactly as on the raw store.
func (s *Store) ReadOp(reqs []disk.ReadReq) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(reqs) == 0 {
		return nil
	}
	var direct []disk.ReadReq
	directPhys := make([]addr, 0, len(reqs))
	var recon []int
	degraded := false
	for i, r := range reqs {
		k := addr{r.Disk, r.Track}
		p, ok := s.physOf(k)
		switch {
		case ok:
			if p.Disk != r.Disk || p.Track != r.Track {
				degraded = true
			}
			direct = append(direct, disk.ReadReq{Disk: p.Disk, Track: p.Track, Dst: r.Dst})
			directPhys = append(directPhys, addr{p.Disk, p.Track})
		default:
			if _, striped := s.stripeOf[k]; striped {
				recon = append(recon, i)
				degraded = true
			} else {
				// Dead, never striped, never rebuilt: the track was blank
				// at the death (fresh writes since then are remapped), so
				// it still reads as zeros.
				clear(r.Dst)
			}
		}
	}
	ops := 0
	if len(direct) > 0 {
		n, err := s.readPhys(direct)
		ops += n
		if err != nil {
			return err
		}
		// Verify recorded checksums; a mismatch is latent corruption the
		// inner store could not detect itself — reconstruct and repair.
		for i, r := range direct {
			p := directPhys[i]
			want, ok := s.sums[p]
			if !ok || disk.Checksum(r.Dst) == want {
				continue
			}
			s.ctr.ChecksumFailures++
			degraded = true
			n, err := s.repairTrack(p)
			ops += n
			if err != nil {
				return err
			}
			n, err = s.readPhys([]disk.ReadReq{r})
			ops += n
			if err != nil {
				return err
			}
			if disk.Checksum(r.Dst) != want {
				return &disk.CorruptTrackError{Disk: p.d, Track: p.t}
			}
		}
	}
	for _, i := range recon {
		k := addr{reqs[i].Disk, reqs[i].Track}
		n, err := s.reconstruct(s.stripeOf[k], k, reqs[i].Dst)
		ops += n
		if err != nil {
			return err
		}
		if want, ok := s.sums[k]; ok && disk.Checksum(reqs[i].Dst) != want {
			return &disk.CorruptTrackError{Disk: k.d, Track: k.t}
		}
	}
	if degraded && ops > 1 {
		s.ctr.DegradedOps += int64(ops - 1)
	}
	return nil
}

// WriteOp performs one parallel write. Writes to striped tracks update
// the stripe's cached parity with the classic read-modify-write small
// write (the old data is read back first, a charged operation); writes
// to unstriped tracks are recorded for stripe assignment at the next
// FlushParity. Writes to dead-drive tracks land on spare capacity of
// the survivors and are remapped from then on.
func (s *Store) WriteOp(reqs []disk.WriteReq) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(reqs) == 0 {
		return nil
	}
	// Read old data of striped targets first (parity maintenance).
	type oldRead struct {
		sid int
		buf []uint64
	}
	var olds []oldRead
	var oldReqs []disk.ReadReq
	type oldCap struct {
		pk  addr
		buf []uint64
	}
	var oldCapture []oldCap // first-touched members to cache after the read
	var oldRecon []oldRead
	for _, r := range reqs {
		k := addr{r.Disk, r.Track}
		sid, ok := s.stripeOf[k]
		if !ok || !s.parityActive(sid) {
			continue
		}
		buf := make([]uint64, s.B)
		if p, live := s.physOf(k); live {
			pk := addr{p.Disk, p.Track}
			if old, ok := s.rmwOld[pk]; ok && !s.wrote[pk] {
				// First rewrite by a replaying attempt: the track already
				// holds the aborted attempt's data, the parity encodes
				// the cached barrier value.
				copy(buf, old)
				olds = append(olds, oldRead{sid, buf})
			} else {
				if !s.wrote[pk] {
					oldCapture = append(oldCapture, oldCap{pk, buf})
				}
				olds = append(olds, oldRead{sid, buf})
				oldReqs = append(oldReqs, disk.ReadReq{Disk: p.Disk, Track: p.Track, Dst: buf})
			}
		} else {
			// Rewrite of a dead, not-yet-rebuilt member: its old value
			// must be reconstructed before parity can drop it.
			n, err := s.reconstruct(sid, k, buf)
			s.ctr.DegradedOps += int64(n)
			if err != nil {
				return err
			}
			oldRecon = append(oldRecon, oldRead{sid, buf})
		}
	}
	if len(oldReqs) > 0 {
		n, err := s.readPhys(oldReqs)
		s.ctr.ParityOps += int64(n)
		if err != nil {
			return err
		}
		// Verify the old data against its recorded checksum before it is
		// folded out of parity or captured as the barrier value. A
		// mismatch is latent corruption — folding it out would silently
		// leave parity encoding the corrupt bytes; reconstruct the real
		// content from parity first, exactly as the read path does.
		for i, r := range oldReqs {
			pk := addr{r.Disk, r.Track}
			want, ok := s.sums[pk]
			if !ok || disk.Checksum(r.Dst) == want {
				continue
			}
			s.ctr.ChecksumFailures++
			n, err := s.repairTrack(pk)
			s.ctr.DegradedOps += int64(n)
			if err != nil {
				return err
			}
			n, err = s.readPhys([]disk.ReadReq{oldReqs[i]})
			s.ctr.DegradedOps += int64(n)
			if err != nil {
				return err
			}
			if disk.Checksum(r.Dst) != want {
				return &disk.CorruptTrackError{Disk: pk.d, Track: pk.t}
			}
		}
		for _, c := range oldCapture {
			s.rmwOld[c.pk] = append([]uint64(nil), c.buf...)
		}
	}
	// Fold old and new data into the cached parity values.
	olds = append(olds, oldRecon...)
	for _, o := range olds {
		if err := s.loadParity(o.sid); err != nil {
			return err
		}
		pv := s.pval[o.sid]
		for i := range pv {
			pv[i] ^= o.buf[i]
		}
		s.pdirty[o.sid] = true
	}
	xorNew := func(k addr, src []uint64) error {
		sid, ok := s.stripeOf[k]
		if !ok || !s.parityActive(sid) {
			return nil
		}
		if err := s.loadParity(sid); err != nil {
			return err
		}
		pv := s.pval[sid]
		for i := range pv {
			pv[i] ^= src[i]
		}
		s.pdirty[sid] = true
		return nil
	}
	// Resolve physical targets, remapping dead-drive writes.
	phys := make([]disk.WriteReq, len(reqs))
	degraded := false
	for i, r := range reqs {
		k := addr{r.Disk, r.Track}
		if err := xorNew(k, r.Src); err != nil {
			return err
		}
		p, live := s.physOf(k)
		if !live {
			sd, ok := s.chooseSpare(k.d, k.t)
			if !ok {
				return fmt.Errorf("redundancy: no live drive to remap drive %d track %d onto", k.d, k.t)
			}
			p = disk.Addr{Disk: sd, Track: s.inner.Alloc(sd)}
			s.remap[k] = p
			s.rrmap[addr{p.Disk, p.Track}] = k
			delete(s.sums, k) // the historical location is dead
		}
		if p.Disk != r.Disk {
			degraded = true
		}
		phys[i] = disk.WriteReq{Disk: p.Disk, Track: p.Track, Src: r.Src}
		s.wrote[addr{p.Disk, p.Track}] = true
		if _, striped := s.stripeOf[k]; !striped {
			s.fresh[k] = true
		}
	}
	ops, err := s.writePhys(phys)
	if err != nil {
		return err
	}
	if ops > 1 {
		if degraded {
			s.ctr.DegradedOps += int64(ops - 1)
		} else {
			s.ctr.ParityOps += int64(ops - 1)
		}
	}
	return nil
}

// Release frees a logical track. A striped member is first XOR-ed out
// of its stripe's parity (reading its current data back — the release
// side of the small-write penalty); the last member's release frees
// the parity track too.
func (s *Store) Release(d, t int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	k := addr{d, t}
	if sid, ok := s.stripeOf[k]; ok {
		st := s.stripes[sid]
		if s.parityActive(sid) {
			buf := make([]uint64, s.B)
			if p, live := s.physOf(k); live {
				pk := addr{p.Disk, p.Track}
				if old, ok := s.rmwOld[pk]; ok && !s.wrote[pk] {
					// The parity state still encodes the barrier value
					// of this rolled-back member; fold that out.
					copy(buf, old)
				} else {
					n, err := s.readPhys([]disk.ReadReq{{Disk: p.Disk, Track: p.Track, Dst: buf}})
					s.ctr.ParityOps += int64(n)
					if err != nil {
						return err
					}
					// Same verification as the write path: never fold
					// unverified bytes out of parity.
					if want, ok := s.sums[pk]; ok && disk.Checksum(buf) != want {
						s.ctr.ChecksumFailures++
						n, err := s.repairTrack(pk)
						s.ctr.DegradedOps += int64(n)
						if err != nil {
							return err
						}
						n, err = s.readPhys([]disk.ReadReq{{Disk: p.Disk, Track: p.Track, Dst: buf}})
						s.ctr.DegradedOps += int64(n)
						if err != nil {
							return err
						}
						if disk.Checksum(buf) != want {
							return &disk.CorruptTrackError{Disk: pk.d, Track: pk.t}
						}
					}
				}
			} else {
				n, err := s.reconstruct(sid, k, buf)
				s.ctr.DegradedOps += int64(n)
				if err != nil {
					return err
				}
			}
			if st.count > 1 {
				if err := s.loadParity(sid); err != nil {
					return err
				}
				pv := s.pval[sid]
				for i := range pv {
					pv[i] ^= buf[i]
				}
				s.pdirty[sid] = true
			}
		}
		st.members[d] = -1
		st.count--
		delete(s.stripeOf, k)
		s.ctr.StripedBlocks--
		if st.count == 0 {
			s.dropStripe(sid)
		} else if !s.inOpen(sid) {
			s.insertOpen(sid)
		}
	}
	if m, ok := s.remap[k]; ok {
		delete(s.remap, k)
		delete(s.rrmap, addr{m.Disk, m.Track})
		delete(s.sums, addr{m.Disk, m.Track})
		if err := s.inner.Release(m.Disk, m.Track); err != nil {
			return err
		}
	} else {
		delete(s.sums, k)
	}
	delete(s.fresh, k)
	return s.inner.Release(d, t)
}

// dropStripe frees an empty stripe and its parity track.
func (s *Store) dropStripe(sid int) {
	st := s.stripes[sid]
	delete(s.parityAt, addr{st.parity.Disk, st.parity.Track})
	delete(s.sums, addr{st.parity.Disk, st.parity.Track})
	delete(s.pval, sid)
	delete(s.pdirty, sid)
	delete(s.recompute, sid)
	delete(s.stripes, sid)
	s.removeOpen(sid)
	if !s.dead[st.parity.Disk] {
		s.inner.Release(st.parity.Disk, st.parity.Track) //nolint:errcheck
	}
	s.ctr.ParityBlocks--
}

func (s *Store) inOpen(sid int) bool {
	i := sort.SearchInts(s.open, sid)
	return i < len(s.open) && s.open[i] == sid
}

func (s *Store) insertOpen(sid int) {
	i := sort.SearchInts(s.open, sid)
	s.open = append(s.open, 0)
	copy(s.open[i+1:], s.open[i:])
	s.open[i] = sid
}

func (s *Store) removeOpen(sid int) {
	i := sort.SearchInts(s.open, sid)
	if i < len(s.open) && s.open[i] == sid {
		s.open = append(s.open[:i], s.open[i+1:]...)
	}
}

// assign places a fresh track into a stripe: the first open stripe
// with a usable parity track, a free slot on the track's drive and a
// parity drive other than it; otherwise a new stripe whose parity
// drive continues the rotation. When no live drive can hold parity
// (D = 2 with the survivor writing), the track is left unprotected
// and assign reports ok = false.
func (s *Store) assign(k addr) (sid int, ok bool) {
	for _, sid := range s.open {
		st := s.stripes[sid]
		if st.members[k.d] < 0 && st.parity.Disk != k.d && s.parityActive(sid) && !st.full(s.D) {
			st.members[k.d] = k.t
			st.count++
			s.stripeOf[k] = sid
			s.ctr.StripedBlocks++
			if st.full(s.D) {
				s.removeOpen(sid)
			}
			return sid, true
		}
	}
	pd := -1
	for i := 0; i < s.D; i++ {
		c := (s.next + i) % s.D
		if c != k.d && !s.dead[c] {
			pd = c
			break
		}
	}
	if pd < 0 {
		return 0, false
	}
	sid = s.next
	s.next++
	st := &stripe{parity: disk.Addr{Disk: pd, Track: s.inner.Alloc(pd)}, members: make([]int, s.D)}
	for d := range st.members {
		st.members[d] = -1
	}
	st.members[k.d] = k.t
	st.count = 1
	s.stripes[sid] = st
	s.parityAt[addr{pd, st.parity.Track}] = sid
	s.stripeOf[k] = sid
	s.pval[sid] = make([]uint64, s.B)
	s.pdirty[sid] = true
	s.ctr.ParityBlocks++
	s.ctr.StripedBlocks++
	if !st.full(s.D) {
		s.insertOpen(sid)
	}
	return sid, true
}

// FlushParity is the barrier commit point of the parity scheme: every
// track written since the last flush is assigned to a stripe, the
// touched stripes' parity values are brought up to date and written
// back, and the in-memory parity cache is dropped. The engines call it
// at every compound-superstep barrier (and before every journal
// commit), so committed state always carries consistent parity.
func (s *Store) FlushParity() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.fresh) > 0 {
		keys := make([]addr, 0, len(s.fresh))
		for k := range s.fresh {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return addrLess(keys[i], keys[j]) })
		protected := keys[:0]
		sids := make([]int, 0, len(keys))
		for _, k := range keys {
			sid, ok := s.assign(k)
			if !ok {
				continue // no live parity drive left: track stays unprotected
			}
			if err := s.loadParity(sid); err != nil {
				return err
			}
			protected = append(protected, k)
			sids = append(sids, sid)
		}
		// Read the fresh tracks' data back and fold it into the parity.
		reqs := make([]disk.ReadReq, len(protected))
		bufs := make([][]uint64, len(protected))
		for i, k := range protected {
			p, live := s.physOf(k)
			if !live {
				return fmt.Errorf("redundancy: fresh track on dead drive %d was never remapped", k.d)
			}
			bufs[i] = make([]uint64, s.B)
			reqs[i] = disk.ReadReq{Disk: p.Disk, Track: p.Track, Dst: bufs[i]}
		}
		n, err := s.readPhys(reqs)
		s.ctr.ParityOps += int64(n)
		if err != nil {
			return err
		}
		for i := range protected {
			pv := s.pval[sids[i]]
			for w := range pv {
				pv[w] ^= bufs[i][w]
			}
			s.pdirty[sids[i]] = true
		}
		s.fresh = make(map[addr]bool)
	}
	if len(s.pdirty) > 0 {
		sids := make([]int, 0, len(s.pdirty))
		for sid := range s.pdirty {
			sids = append(sids, sid)
		}
		sort.Ints(sids)
		reqs := make([]disk.WriteReq, 0, len(sids))
		for _, sid := range sids {
			st := s.stripes[sid]
			reqs = append(reqs, disk.WriteReq{Disk: st.parity.Disk, Track: st.parity.Track, Src: s.pval[sid]})
		}
		n, err := s.writePhys(reqs)
		s.ctr.ParityOps += int64(n)
		if err != nil {
			return err
		}
		s.pdirty = make(map[int]bool)
	}
	// Drop the caches: memory stays bounded by the stripes and members
	// touched in one superstep, not by the run. The barrier makes the
	// physical state authoritative again, so the rewrite history of the
	// finished superstep is no longer needed.
	s.pval = make(map[int][]uint64)
	s.rmwOld = make(map[addr][]uint64)
	s.wrote = make(map[addr]bool)
	// Stripes whose parity went stale across a crash (Reconcile could
	// not recompute them at resume time) are recomputed here, once the
	// replay has rewritten their unreadable members.
	if len(s.recompute) > 0 {
		sids := make([]int, 0, len(s.recompute))
		for sid := range s.recompute {
			sids = append(sids, sid)
		}
		sort.Ints(sids)
		for _, sid := range sids {
			if _, err := s.recomputeStaleParity(sid); err != nil {
				return err
			}
		}
	}
	return nil
}

// recomputeStaleParity recomputes and rewrites the parity of a
// recompute-marked stripe from the current member contents, clearing
// the mark on success. It keeps the mark (done = false, no error)
// while the stripe cannot be recomputed yet: a member is torn and not
// yet rewritten, a member or the parity track sits on a dead drive
// awaiting rebuild. Its I/O is recovery work outside any superstep's
// accounting, so no redundancy counters are charged.
func (s *Store) recomputeStaleParity(sid int) (done bool, err error) {
	st, ok := s.stripes[sid]
	if !ok {
		delete(s.recompute, sid)
		return true, nil
	}
	if !s.parityUsable(st) {
		return false, nil // the rebuild's re-homing recomputes it
	}
	dst := make([]uint64, s.B)
	buf := make([]uint64, s.B)
	for d := 0; d < s.D; d++ {
		t := st.members[d]
		if t < 0 {
			continue
		}
		p, ok := s.physOf(addr{d, t})
		if !ok {
			return false, nil
		}
		rerr := s.inner.ReadOp([]disk.ReadReq{{Disk: p.Disk, Track: p.Track, Dst: buf}})
		var cte *disk.CorruptTrackError
		if errors.As(rerr, &cte) {
			return false, nil
		}
		if rerr != nil {
			return false, rerr
		}
		pk := addr{p.Disk, p.Track}
		if want, ok := s.sums[pk]; ok && disk.Checksum(buf) != want {
			return false, fmt.Errorf("redundancy: recomputing stale parity of stripe %d: member drive %d track %d fails its checksum", sid, pk.d, pk.t)
		}
		for i := range dst {
			dst[i] ^= buf[i]
		}
	}
	if _, werr := s.writePhys([]disk.WriteReq{{Disk: st.parity.Disk, Track: st.parity.Track, Src: dst}}); werr != nil {
		return false, werr
	}
	delete(s.recompute, sid)
	return true, nil
}

// Scrub examines up to budget physical tracks from the persistent
// cursor, re-reading every checksummed one and repairing latent
// corruption from parity. It reports whether the cursor completed a
// full cycle over all drives during this call. Dead drives and
// uncheck-summed (blank or released) tracks are skipped. Scrub must
// run at a barrier (after FlushParity), where parity is consistent.
func (s *Store) Scrub(budget int) (wrapped bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if budget <= 0 {
		return false, nil
	}
	next := s.inner.State().Next
	buf := make([]uint64, s.B)
	for examined := 0; examined < budget; examined++ {
		// Advance to the next live track within bounds.
		for s.scrubD < s.D && (s.dead[s.scrubD] || s.scrubT >= next[s.scrubD]) {
			s.scrubD++
			s.scrubT = 0
		}
		if s.scrubD >= s.D {
			s.scrubD, s.scrubT = 0, 0
			return true, nil
		}
		p := addr{s.scrubD, s.scrubT}
		s.scrubT++
		want, ok := s.sums[p]
		if !ok {
			continue
		}
		if _, err := s.readPhys([]disk.ReadReq{{Disk: p.d, Track: p.t, Dst: buf}}); err != nil {
			return false, err
		}
		s.ctr.ScrubbedBlocks++
		if disk.Checksum(buf) == want {
			continue
		}
		s.ctr.ChecksumFailures++
		// A failed repair (e.g. two corruptions in one stripe — beyond
		// single-failure tolerance) is recorded but does not abort the
		// scrub: the track stays corrupt and a read of it will report
		// the damage.
		if _, err := s.repairTrack(p); err == nil {
			s.ctr.ScrubRepairs++
		}
	}
	return false, nil
}

// RebuildStep advances the online rebuild by up to budget tracks:
// striped tracks of the dead drive are reconstructed onto spare
// capacity of the survivors and remapped, then stripes whose parity
// track died are recomputed onto a live drive. Like Scrub it must run
// at a barrier. When everything is rebuilt the drive is considered
// fully absorbed and Rebuilding turns false.
func (s *Store) RebuildStep(budget int) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.rebDrive < 0 || budget <= 0 {
		return nil
	}
	d := s.rebDrive
	limit := s.inner.State().Next[d]
	buf := make([]uint64, s.B)
	for budget > 0 && s.rebTrack < limit {
		t := s.rebTrack
		s.rebTrack++
		k := addr{d, t}
		if _, remapped := s.remap[k]; remapped {
			continue
		}
		sid, striped := s.stripeOf[k]
		if !striped || !s.parityUsable(s.stripes[sid]) {
			continue
		}
		n, err := s.reconstruct(sid, k, buf)
		s.ctr.DegradedOps += int64(n)
		if err != nil {
			return err
		}
		sd, ok := s.chooseSpare(d, t)
		if !ok {
			return fmt.Errorf("redundancy: no live drive to rebuild drive %d onto", d)
		}
		p := disk.Addr{Disk: sd, Track: s.inner.Alloc(sd)}
		if _, err := s.writePhys([]disk.WriteReq{{Disk: p.Disk, Track: p.Track, Src: buf}}); err != nil {
			return err
		}
		s.remap[k] = p
		s.rrmap[addr{p.Disk, p.Track}] = k
		delete(s.sums, k)
		s.ctr.RebuiltBlocks++
		budget--
	}
	if s.rebTrack < limit {
		return nil
	}
	// Phase 2: re-home parity tracks that lived on the dead drive. With
	// a full stripe every live drive already holds a member, so the new
	// parity may share a drive with one — reconstruction then costs an
	// extra split operation, and full second-failure tolerance is not
	// restored until those stripes turn over (documented limitation).
	for budget > 0 && s.rebParity < s.next {
		sid := s.rebParity
		s.rebParity++
		st, ok := s.stripes[sid]
		if !ok || st.parity.Disk != d {
			continue
		}
		if err := func() error {
			n, err := s.recomputeParity(sid, buf)
			s.ctr.DegradedOps += int64(n)
			if err != nil {
				return err
			}
			pd, ok := s.chooseSpare(d, sid)
			if !ok {
				return fmt.Errorf("redundancy: no live drive for the parity of stripe %d", sid)
			}
			old := addr{st.parity.Disk, st.parity.Track}
			np := disk.Addr{Disk: pd, Track: s.inner.Alloc(pd)}
			if _, err := s.writePhys([]disk.WriteReq{{Disk: np.Disk, Track: np.Track, Src: buf}}); err != nil {
				return err
			}
			delete(s.parityAt, old)
			delete(s.sums, old)
			st.parity = np
			s.parityAt[addr{np.Disk, np.Track}] = sid
			// Re-homing recomputed the parity from the current members,
			// which is exactly what a crash-stale stripe was waiting for.
			delete(s.recompute, sid)
			return nil
		}(); err != nil {
			return err
		}
		budget--
	}
	if s.rebParity >= s.next && s.rebTrack >= s.inner.State().Next[d] {
		s.rebDrive = -1
	}
	return nil
}

// Snapshot captures the layer's rollback state for a superstep replay:
// the stripe directory, checksums, remaps and parity cache. Dead
// drives, the scrub/rebuild cursors and the counters are deliberately
// not part of it — a replay is new work on the same (possibly
// degraded) hardware, and work already spent really happened. This
// mirrors the fault layer's Snapshot philosophy.
type Snapshot struct {
	stripeOf map[addr]int
	stripes  map[int]*stripe
	parityAt map[addr]int
	open     []int
	next     int
	pval     map[int][]uint64
	pdirty   map[int]bool
	fresh    map[addr]bool
	sums     map[addr]uint64
	remap    map[addr]disk.Addr
	rrmap    map[addr]addr
	striped  int64
	parityBl int64
}

// Snapshot captures rollback state at a compound-superstep barrier.
func (s *Store) Snapshot() *Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	sn := &Snapshot{
		stripeOf: make(map[addr]int, len(s.stripeOf)),
		stripes:  make(map[int]*stripe, len(s.stripes)),
		parityAt: make(map[addr]int, len(s.parityAt)),
		open:     append([]int(nil), s.open...),
		next:     s.next,
		pval:     make(map[int][]uint64, len(s.pval)),
		pdirty:   make(map[int]bool, len(s.pdirty)),
		fresh:    make(map[addr]bool, len(s.fresh)),
		sums:     make(map[addr]uint64, len(s.sums)),
		remap:    make(map[addr]disk.Addr, len(s.remap)),
		rrmap:    make(map[addr]addr, len(s.rrmap)),
		striped:  s.ctr.StripedBlocks,
		parityBl: s.ctr.ParityBlocks,
	}
	for k, v := range s.stripeOf {
		sn.stripeOf[k] = v
	}
	for sid, st := range s.stripes {
		cp := &stripe{parity: st.parity, members: append([]int(nil), st.members...), count: st.count}
		sn.stripes[sid] = cp
	}
	for k, v := range s.parityAt {
		sn.parityAt[k] = v
	}
	for sid, pv := range s.pval {
		sn.pval[sid] = append([]uint64(nil), pv...)
	}
	for sid := range s.pdirty {
		sn.pdirty[sid] = true
	}
	for k := range s.fresh {
		sn.fresh[k] = true
	}
	for k, v := range s.sums {
		sn.sums[k] = v
	}
	for k, v := range s.remap {
		sn.remap[k] = v
	}
	for k, v := range s.rrmap {
		sn.rrmap[k] = v
	}
	return sn
}

// Restore rolls the layer back to a snapshot. The snapshot remains
// valid for further Restores.
func (s *Store) Restore(sn *Snapshot) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stripeOf = make(map[addr]int, len(sn.stripeOf))
	for k, v := range sn.stripeOf {
		s.stripeOf[k] = v
	}
	s.stripes = make(map[int]*stripe, len(sn.stripes))
	for sid, st := range sn.stripes {
		s.stripes[sid] = &stripe{parity: st.parity, members: append([]int(nil), st.members...), count: st.count}
	}
	s.parityAt = make(map[addr]int, len(sn.parityAt))
	for k, v := range sn.parityAt {
		s.parityAt[k] = v
	}
	s.open = append([]int(nil), sn.open...)
	s.next = sn.next
	s.pval = make(map[int][]uint64, len(sn.pval))
	for sid, pv := range sn.pval {
		s.pval[sid] = append([]uint64(nil), pv...)
	}
	s.pdirty = make(map[int]bool, len(sn.pdirty))
	for sid := range sn.pdirty {
		s.pdirty[sid] = true
	}
	s.fresh = make(map[addr]bool, len(sn.fresh))
	for k := range sn.fresh {
		s.fresh[k] = true
	}
	s.sums = make(map[addr]uint64, len(sn.sums))
	for k, v := range sn.sums {
		s.sums[k] = v
	}
	s.remap = make(map[addr]disk.Addr, len(sn.remap))
	for k, v := range sn.remap {
		s.remap[k] = v
	}
	s.rrmap = make(map[addr]addr, len(sn.rrmap))
	for k, v := range sn.rrmap {
		s.rrmap[k] = v
	}
	s.ctr.StripedBlocks = sn.striped
	s.ctr.ParityBlocks = sn.parityBl
	// A restore starts a fresh attempt: nothing is written yet. rmwOld
	// deliberately survives — it holds the barrier-committed content of
	// members the aborted attempt already overwrote in place, which the
	// replay needs for its parity arithmetic.
	s.wrote = make(map[addr]bool)
}

// EncodeState appends the layer's complete persistent state to enc in
// deterministic order: dead drives, the stripe directory, checksums,
// remaps, the scrub and rebuild cursors, and the counters. A journal
// commit must capture everything — a resumed process replaces the
// crashed one entirely, so the scrub continues at its cursor and an
// interrupted rebuild picks up exactly where it stopped. It must be
// called at a barrier, after FlushParity (the parity cache and fresh
// set are empty there and are not encoded).
func (s *Store) EncodeState(enc *words.Encoder) {
	s.mu.Lock()
	defer s.mu.Unlock()
	enc.PutInt(int64(s.D))
	for _, d := range s.dead {
		enc.PutBool(d)
	}
	enc.PutInt(int64(s.next))
	enc.PutInts([]int64{int64(s.scrubD), int64(s.scrubT), int64(s.rebDrive), int64(s.rebTrack), int64(s.rebParity)})
	c := s.ctr
	enc.PutInts([]int64{
		c.ChecksumFailures, c.RepairedBlocks, c.ReconstructedBlocks, c.DegradedOps,
		c.ParityOps, c.ParityBlocks, c.StripedBlocks, c.ScrubbedBlocks, c.ScrubRepairs,
		c.RebuiltBlocks,
	})

	sids := make([]int, 0, len(s.stripes))
	for sid := range s.stripes {
		sids = append(sids, sid)
	}
	sort.Ints(sids)
	enc.PutInt(int64(len(sids)))
	for _, sid := range sids {
		st := s.stripes[sid]
		enc.PutInt(int64(sid))
		enc.PutInt(int64(st.parity.Disk))
		enc.PutInt(int64(st.parity.Track))
		for _, t := range st.members {
			enc.PutInt(int64(t))
		}
	}

	sumKeys := make([]addr, 0, len(s.sums))
	for k := range s.sums {
		sumKeys = append(sumKeys, k)
	}
	sort.Slice(sumKeys, func(i, j int) bool { return addrLess(sumKeys[i], sumKeys[j]) })
	enc.PutInt(int64(len(sumKeys)))
	for _, k := range sumKeys {
		enc.PutInt(int64(k.d))
		enc.PutInt(int64(k.t))
		enc.PutUint(s.sums[k])
	}

	remapKeys := make([]addr, 0, len(s.remap))
	for k := range s.remap {
		remapKeys = append(remapKeys, k)
	}
	sort.Slice(remapKeys, func(i, j int) bool { return addrLess(remapKeys[i], remapKeys[j]) })
	enc.PutInt(int64(len(remapKeys)))
	for _, k := range remapKeys {
		m := s.remap[k]
		enc.PutInt(int64(k.d))
		enc.PutInt(int64(k.t))
		enc.PutInt(int64(m.Disk))
		enc.PutInt(int64(m.Track))
	}
}

// DecodeState restores state previously written by EncodeState,
// rebuilding the derived directories (stripe membership, parity
// locations, open list, reverse remap).
func (s *Store) DecodeState(dec *words.Decoder) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	nd := int(dec.Int())
	if nd != s.D {
		return fmt.Errorf("redundancy: decoding state for %d drives into %d-drive layer", nd, s.D)
	}
	for d := range s.dead {
		s.dead[d] = dec.Bool()
	}
	s.next = int(dec.Int())
	cur := dec.Ints()
	if len(cur) != 5 {
		return fmt.Errorf("redundancy: cursor state has %d fields, want 5", len(cur))
	}
	s.scrubD, s.scrubT = int(cur[0]), int(cur[1])
	s.rebDrive, s.rebTrack, s.rebParity = int(cur[2]), int(cur[3]), int(cur[4])
	cs := dec.Ints()
	if len(cs) != 10 {
		return fmt.Errorf("redundancy: counter state has %d fields, want 10", len(cs))
	}
	s.ctr = Counters{
		ChecksumFailures: cs[0], RepairedBlocks: cs[1], ReconstructedBlocks: cs[2],
		DegradedOps: cs[3], ParityOps: cs[4], ParityBlocks: cs[5], StripedBlocks: cs[6],
		ScrubbedBlocks: cs[7], ScrubRepairs: cs[8], RebuiltBlocks: cs[9],
	}

	s.stripes = make(map[int]*stripe)
	s.stripeOf = make(map[addr]int)
	s.parityAt = make(map[addr]int)
	s.open = nil
	for n := dec.Int(); n > 0; n-- {
		sid := int(dec.Int())
		st := &stripe{members: make([]int, s.D)}
		st.parity = disk.Addr{Disk: int(dec.Int()), Track: int(dec.Int())}
		for d := 0; d < s.D; d++ {
			st.members[d] = int(dec.Int())
			if st.members[d] >= 0 {
				st.count++
				s.stripeOf[addr{d, st.members[d]}] = sid
			}
		}
		s.stripes[sid] = st
		s.parityAt[addr{st.parity.Disk, st.parity.Track}] = sid
		if !st.full(s.D) {
			s.open = append(s.open, sid)
		}
	}
	sort.Ints(s.open)

	s.sums = make(map[addr]uint64)
	for n := dec.Int(); n > 0; n-- {
		d := int(dec.Int())
		t := int(dec.Int())
		s.sums[addr{d, t}] = dec.Uint()
	}
	s.remap = make(map[addr]disk.Addr)
	s.rrmap = make(map[addr]addr)
	for n := dec.Int(); n > 0; n-- {
		k := addr{int(dec.Int()), int(dec.Int())}
		m := disk.Addr{Disk: int(dec.Int()), Track: int(dec.Int())}
		s.remap[k] = m
		s.rrmap[addr{m.Disk, m.Track}] = k
	}
	s.pval = make(map[int][]uint64)
	s.pdirty = make(map[int]bool)
	s.fresh = make(map[addr]bool)
	return nil
}

// Reconcile re-establishes the parity invariant after a crash-resume;
// the engines call it once, right after DecodeState and before the
// replay starts.
//
// Under the checkpoint discipline a superstep rewrites committed
// striped tracks in place (the context double-buffer areas), and the
// in-memory rmwOld cache that lets a same-process replay fold the
// barrier content out of parity dies with the process. A resumed
// process therefore faces physical tracks that may hold the crashed
// attempt's bytes (checksum mismatch against the manifest) or a torn
// write (the inner store's own per-track checksum fails), with stored
// parity encoding either the barrier state (crash before FlushParity)
// or the aborted barrier's state (crash between FlushParity and the
// journal commit). Left alone, the replay's read-modify-write would
// fold the crashed bytes out of parity as if they were the barrier
// content, leaving parity silently stale — the classic RAID write
// hole.
//
// Reconcile scans every checksummed live track. A stripe with exactly
// one bad track is repaired the ordinary way: the committed content is
// reconstructed from the surviving tracks and rewritten. A stripe with
// several bad tracks cannot be rolled back — parity is one equation —
// so the current physical content is adopted instead: member checksums
// are updated to match what is on disk and parity is recomputed from
// it. Adoption is sound because the deterministic replay rewrites
// exactly the crashed attempt's tracks before the next barrier, and
// the read-modify-write only needs the "old" value it folds out to be
// the value parity currently encodes. When a member of such a stripe
// is torn or lost (dead drive, not yet rebuilt) the recomputation is
// deferred to the next FlushParity via the recompute set, and reads
// needing reconstruction from the stripe fail loudly until then: crash
// residue plus a lost member in one stripe is genuinely beyond
// single-failure tolerance.
//
// Reconcile is accounting-neutral: its repair I/O is real but belongs
// to no superstep, so the inner Stats and the redundancy Counters are
// restored around it and a resumed run's figures stay bitwise
// identical to an uninterrupted one.
func (s *Store) Reconcile() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	ctr := s.ctr
	st := s.inner.State()
	err := s.reconcile()
	s.ctr = ctr
	if aerr := s.inner.AdoptState(st); err == nil {
		err = aerr
	}
	return err
}

func (s *Store) reconcile() error {
	keys := make([]addr, 0, len(s.sums))
	for k := range s.sums {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return addrLess(keys[i], keys[j]) })
	stale := make(map[addr]uint64) // readable, content != recorded sum -> current checksum
	torn := make(map[addr]bool)    // the inner store reports the track torn
	buf := make([]uint64, s.B)
	for _, k := range keys {
		if s.dead[k.d] {
			continue
		}
		err := s.inner.ReadOp([]disk.ReadReq{{Disk: k.d, Track: k.t, Dst: buf}})
		var cte *disk.CorruptTrackError
		switch {
		case errors.As(err, &cte):
			torn[k] = true
		case err != nil:
			return err
		case disk.Checksum(buf) != s.sums[k]:
			stale[k] = disk.Checksum(buf)
		}
	}
	if len(stale)+len(torn) == 0 {
		return nil
	}
	// Group the residue by stripe (keys is sorted, so bySid's slices
	// and sids are deterministic).
	bySid := make(map[int][]addr)
	var sids []int
	var orphans []addr
	for _, k := range keys {
		if _, isStale := stale[k]; !isStale && !torn[k] {
			continue
		}
		sid, ok := s.sidOfPhys(k)
		if !ok {
			orphans = append(orphans, k)
			continue
		}
		if _, seen := bySid[sid]; !seen {
			sids = append(sids, sid)
		}
		bySid[sid] = append(bySid[sid], k)
	}
	sort.Ints(sids)
	// Unprotected residue: adopt what is on disk, or forget the
	// checksum of a torn track — the replay rewrites it.
	for _, k := range orphans {
		if torn[k] {
			delete(s.sums, k)
		} else {
			s.sums[k] = stale[k]
		}
	}
	for _, sid := range sids {
		bad := bySid[sid]
		if len(bad) == 1 && s.stripeIntactExcept(sid, bad[0]) {
			// A single bad track in an otherwise healthy stripe: restore
			// the committed content from the survivors.
			if _, err := s.repairTrack(bad[0]); err != nil {
				return err
			}
			continue
		}
		// Adoption: the current physical content becomes authoritative.
		for _, k := range bad {
			if _, isParity := s.parityAt[k]; isParity {
				continue // recomputed below, never adopted
			}
			if torn[k] {
				delete(s.sums, k)
			} else {
				s.sums[k] = stale[k]
			}
		}
		s.recompute[sid] = true
		if _, err := s.recomputeStaleParity(sid); err != nil {
			return err
		}
	}
	return nil
}

// sidOfPhys maps a physical track to its stripe via the parity
// directory, the reverse remap, or the identity mapping.
func (s *Store) sidOfPhys(k addr) (int, bool) {
	if sid, ok := s.parityAt[k]; ok {
		return sid, true
	}
	l := k
	if r, ok := s.rrmap[k]; ok {
		l = r
	}
	sid, ok := s.stripeOf[l]
	return sid, ok
}

// stripeIntactExcept reports whether the bad track p can be repaired
// from the rest of its stripe: every member has a readable physical
// copy and, unless p is the parity track itself, the parity track is
// on a live drive.
func (s *Store) stripeIntactExcept(sid int, p addr) bool {
	st := s.stripes[sid]
	if _, isParity := s.parityAt[p]; !isParity && !s.parityUsable(st) {
		return false
	}
	for d, t := range st.members {
		if t < 0 {
			continue
		}
		if _, ok := s.physOf(addr{d, t}); !ok {
			return false
		}
	}
	return true
}
