package redundancy

import (
	"testing"

	"embsp/internal/disk"
	"embsp/internal/prng"
	"embsp/internal/words"
)

func mkStore(t *testing.T, D, B int) (*Store, *disk.Array) {
	t.Helper()
	raw := disk.MustNewArray(disk.Config{D: D, B: B})
	s, err := Wrap(raw)
	if err != nil {
		t.Fatalf("Wrap: %v", err)
	}
	return s, raw
}

// pattern fills buf with a deterministic pattern unique to (d, t).
func pattern(buf []uint64, d, t int) {
	base := uint64(d)<<40 ^ uint64(t)<<16 ^ 0x9e3779b97f4a7c15
	for i := range buf {
		buf[i] = base * uint64(i+1)
	}
}

// writeTracks allocates and writes one track per drive per round and
// returns the written addresses.
func writeTracks(t *testing.T, s *Store, D, B, rounds int) []disk.Addr {
	t.Helper()
	var addrs []disk.Addr
	buf := make([]uint64, B)
	for r := 0; r < rounds; r++ {
		var reqs []disk.WriteReq
		for d := 0; d < D; d++ {
			tr := s.Alloc(d)
			pattern(buf, d, tr)
			reqs = append(reqs, disk.WriteReq{Disk: d, Track: tr, Src: append([]uint64(nil), buf...)})
			addrs = append(addrs, disk.Addr{Disk: d, Track: tr})
		}
		if err := s.WriteOp(reqs); err != nil {
			t.Fatalf("WriteOp: %v", err)
		}
	}
	return addrs
}

func checkTrack(t *testing.T, s *Store, a disk.Addr, B int) {
	t.Helper()
	got := make([]uint64, B)
	if err := s.ReadOp([]disk.ReadReq{{Disk: a.Disk, Track: a.Track, Dst: got}}); err != nil {
		t.Fatalf("ReadOp drive %d track %d: %v", a.Disk, a.Track, err)
	}
	want := make([]uint64, B)
	pattern(want, a.Disk, a.Track)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("drive %d track %d word %d: got %#x want %#x", a.Disk, a.Track, i, got[i], want[i])
		}
	}
}

func TestParityRoundTrip(t *testing.T) {
	const D, B = 4, 16
	s, _ := mkStore(t, D, B)
	addrs := writeTracks(t, s, D, B, 5)
	if err := s.FlushParity(); err != nil {
		t.Fatalf("FlushParity: %v", err)
	}
	for _, a := range addrs {
		checkTrack(t, s, a, B)
	}
	c := s.Counters()
	if c.StripedBlocks != int64(len(addrs)) {
		t.Errorf("StripedBlocks = %d, want %d", c.StripedBlocks, len(addrs))
	}
	// Parity overhead: at most ⌈striped/(D-1)⌉ plus one open stripe per
	// drive of slack — far below the 2× of mirroring.
	maxParity := (c.StripedBlocks+int64(D-2))/int64(D-1) + int64(D)
	if c.ParityBlocks > maxParity {
		t.Errorf("ParityBlocks = %d, want <= %d (striped = %d)", c.ParityBlocks, maxParity, c.StripedBlocks)
	}
	if c.DegradedOps != 0 || c.ReconstructedBlocks != 0 {
		t.Errorf("healthy run shows degraded work: %+v", c)
	}
}

func TestDegradedRead(t *testing.T) {
	const D, B = 4, 16
	s, _ := mkStore(t, D, B)
	addrs := writeTracks(t, s, D, B, 4)
	if err := s.FlushParity(); err != nil {
		t.Fatalf("FlushParity: %v", err)
	}
	const dead = 2
	s.DriveDied(dead)
	for _, a := range addrs {
		checkTrack(t, s, a, B)
	}
	c := s.Counters()
	if c.ReconstructedBlocks == 0 {
		t.Error("no blocks reconstructed after drive death")
	}
	if c.DegradedOps == 0 {
		t.Error("no degraded ops charged after drive death")
	}
	// A blank track on the dead drive still reads as zeros.
	tr := s.Alloc(dead)
	got := make([]uint64, B)
	if err := s.ReadOp([]disk.ReadReq{{Disk: dead, Track: tr, Dst: got}}); err != nil {
		t.Fatalf("blank read: %v", err)
	}
	for i, w := range got {
		if w != 0 {
			t.Fatalf("blank dead-drive track word %d = %#x, want 0", i, w)
		}
	}
}

func TestRewriteReleaseAndDeath(t *testing.T) {
	const D, B = 3, 8
	s, _ := mkStore(t, D, B)
	addrs := writeTracks(t, s, D, B, 4)
	if err := s.FlushParity(); err != nil {
		t.Fatalf("FlushParity: %v", err)
	}
	// Rewrite some striped tracks (small-write path) and release others.
	buf := make([]uint64, B)
	for i, a := range addrs {
		switch i % 3 {
		case 0:
			pattern(buf, a.Disk, a.Track+1000)
			if err := s.WriteOp([]disk.WriteReq{{Disk: a.Disk, Track: a.Track, Src: append([]uint64(nil), buf...)}}); err != nil {
				t.Fatalf("rewrite: %v", err)
			}
		case 1:
			if err := s.Release(a.Disk, a.Track); err != nil {
				t.Fatalf("release: %v", err)
			}
		}
	}
	if err := s.FlushParity(); err != nil {
		t.Fatalf("FlushParity: %v", err)
	}
	s.DriveDied(1)
	for i, a := range addrs {
		want := make([]uint64, B)
		switch i % 3 {
		case 0:
			pattern(want, a.Disk, a.Track+1000)
		case 1:
			continue // released
		case 2:
			pattern(want, a.Disk, a.Track)
		}
		got := make([]uint64, B)
		if err := s.ReadOp([]disk.ReadReq{{Disk: a.Disk, Track: a.Track, Dst: got}}); err != nil {
			t.Fatalf("read drive %d track %d: %v", a.Disk, a.Track, err)
		}
		for w := range want {
			if got[w] != want[w] {
				t.Fatalf("drive %d track %d word %d: got %#x want %#x", a.Disk, a.Track, w, got[w], want[w])
			}
		}
	}
	if s.Counters().ParityOps == 0 {
		t.Error("no parity maintenance ops recorded")
	}
}

// TestScrubCompleteness is the scrub property test: latent corruption
// seeded at random committed tracks is fully found and repaired by one
// scrub cycle, with exactly one detected checksum failure per injected
// instance.
func TestScrubCompleteness(t *testing.T) {
	const D, B = 4, 16
	for _, seed := range []uint64{1, 7, 42} {
		s, raw := mkStore(t, D, B)
		addrs := writeTracks(t, s, D, B, 6)
		if err := s.FlushParity(); err != nil {
			t.Fatalf("FlushParity: %v", err)
		}
		// Corrupt random committed tracks (data and parity alike)
		// directly on the raw store, beneath the layer — at most one
		// per stripe, since single XOR parity by construction cannot
		// repair two bad tracks in one group.
		rng := prng.New(prng.Derive(seed, 0x5c52))
		summed := s.summedTracks()
		injected := map[disk.Addr]bool{}
		hitStripes := map[int]bool{}
		garbage := make([]uint64, B)
		for len(injected) < 5 {
			a := summed[rng.Intn(len(summed))]
			if injected[a] {
				continue
			}
			sid, ok := s.stripeID(a)
			if !ok || hitStripes[sid] {
				continue
			}
			hitStripes[sid] = true
			injected[a] = true
			for i := range garbage {
				garbage[i] = rng.Uint64()
			}
			if err := raw.WriteOp([]disk.WriteReq{{Disk: a.Disk, Track: a.Track, Src: append([]uint64(nil), garbage...)}}); err != nil {
				t.Fatalf("inject: %v", err)
			}
		}
		// One full scrub cycle.
		for {
			wrapped, err := s.Scrub(2 * D)
			if err != nil {
				t.Fatalf("seed %d: Scrub: %v", seed, err)
			}
			if wrapped {
				break
			}
		}
		c := s.Counters()
		if c.ChecksumFailures != int64(len(injected)) {
			t.Errorf("seed %d: ChecksumFailures = %d, want %d", seed, c.ChecksumFailures, len(injected))
		}
		if c.ScrubRepairs != c.ChecksumFailures {
			t.Errorf("seed %d: ScrubRepairs = %d, ChecksumFailures = %d — scrub must repair every instance it finds", seed, c.ScrubRepairs, c.ChecksumFailures)
		}
		// Everything reads back clean afterwards (no further failures).
		for _, a := range addrs {
			checkTrack(t, s, a, B)
		}
		if c2 := s.Counters(); c2.ChecksumFailures != c.ChecksumFailures {
			t.Errorf("seed %d: reads after a full scrub still detect corruption", seed)
		}
	}
}

// summedTracks returns the physical tracks with recorded checksums, in
// deterministic order (test helper).
func (s *Store) summedTracks() []disk.Addr {
	var out []disk.Addr
	next := s.inner.State().Next
	for d := 0; d < s.D; d++ {
		for t := 0; t < next[d]; t++ {
			if _, ok := s.sums[addr{d, t}]; ok {
				out = append(out, disk.Addr{Disk: d, Track: t})
			}
		}
	}
	return out
}

// stripeID maps a physical track to its parity group (test helper).
func (s *Store) stripeID(a disk.Addr) (int, bool) {
	k := addr{a.Disk, a.Track}
	if sid, ok := s.parityAt[k]; ok {
		return sid, true
	}
	if l, ok := s.rrmap[k]; ok {
		k = l
	}
	sid, ok := s.stripeOf[k]
	return sid, ok
}

func TestOnlineRebuild(t *testing.T) {
	const D, B = 4, 8
	s, _ := mkStore(t, D, B)
	addrs := writeTracks(t, s, D, B, 5)
	if err := s.FlushParity(); err != nil {
		t.Fatalf("FlushParity: %v", err)
	}
	const dead = 1
	s.DriveDied(dead)
	if !s.Rebuilding() {
		t.Fatal("Rebuilding() = false right after a drive death")
	}
	steps := 0
	for s.Rebuilding() {
		if err := s.RebuildStep(2); err != nil {
			t.Fatalf("RebuildStep: %v", err)
		}
		steps++
		if steps > 1000 {
			t.Fatal("rebuild did not terminate")
		}
	}
	c := s.Counters()
	if c.RebuiltBlocks == 0 {
		t.Error("rebuild finished without rebuilding any block")
	}
	// After the rebuild every dead-drive track is served from its
	// remapped copy: reads need no further reconstruction.
	recon0 := c.ReconstructedBlocks
	for _, a := range addrs {
		checkTrack(t, s, a, B)
	}
	if c2 := s.Counters(); c2.ReconstructedBlocks != recon0 {
		t.Errorf("reads after a completed rebuild still reconstruct (%d -> %d)", recon0, c2.ReconstructedBlocks)
	}
	// New writes to the dead drive land on spare capacity and read back.
	tr := s.Alloc(dead)
	buf := make([]uint64, B)
	pattern(buf, dead, tr)
	if err := s.WriteOp([]disk.WriteReq{{Disk: dead, Track: tr, Src: append([]uint64(nil), buf...)}}); err != nil {
		t.Fatalf("post-death write: %v", err)
	}
	if err := s.FlushParity(); err != nil {
		t.Fatalf("FlushParity: %v", err)
	}
	checkTrack(t, s, disk.Addr{Disk: dead, Track: tr}, B)
}

func TestSnapshotRestore(t *testing.T) {
	const D, B = 3, 8
	s, _ := mkStore(t, D, B)
	addrs := writeTracks(t, s, D, B, 3)
	if err := s.FlushParity(); err != nil {
		t.Fatalf("FlushParity: %v", err)
	}
	mark := s.AllocSnapshot()
	sn := s.Snapshot()
	// Mutate under the engines' checkpoint discipline: committed tracks
	// are never rewritten in place and their frees are deferred to the
	// barrier commit, so speculative work is fresh allocations only
	// (plus frees of those same fresh tracks).
	fresh := writeTracks(t, s, D, B, 2)
	if err := s.Release(fresh[0].Disk, fresh[0].Track); err != nil {
		t.Fatalf("release: %v", err)
	}
	if err := s.FlushParity(); err != nil {
		t.Fatalf("FlushParity: %v", err)
	}
	// Roll back (the engine's replay path: allocator first, then layer).
	s.AllocRestore(mark)
	s.Restore(sn)
	for _, a := range addrs {
		checkTrack(t, s, a, B)
	}
}

func TestEncodeDecodeResume(t *testing.T) {
	const D, B = 4, 8
	s, raw := mkStore(t, D, B)
	addrs := writeTracks(t, s, D, B, 5)
	if err := s.FlushParity(); err != nil {
		t.Fatalf("FlushParity: %v", err)
	}
	s.DriveDied(2)
	if err := s.RebuildStep(3); err != nil { // partial rebuild
		t.Fatalf("RebuildStep: %v", err)
	}
	if _, err := s.Scrub(5); err != nil { // partial scrub
		t.Fatalf("Scrub: %v", err)
	}
	enc := words.NewEncoder(nil)
	s.EncodeState(enc)

	// A resumed process: a fresh layer over the same (durable) store.
	s2, err := Wrap(raw)
	if err != nil {
		t.Fatalf("Wrap: %v", err)
	}
	dec := words.NewDecoder(enc.Words())
	if err := s2.DecodeState(dec); err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	if dec.Remaining() != 0 {
		t.Fatalf("decode left %d words", dec.Remaining())
	}
	if s2.Counters() != s.Counters() {
		t.Errorf("counters differ after decode:\n  %+v\n  %+v", s2.Counters(), s.Counters())
	}
	if !s2.Rebuilding() {
		t.Error("resumed layer lost the rebuild cursor")
	}
	for s2.Rebuilding() {
		if err := s2.RebuildStep(4); err != nil {
			t.Fatalf("resumed RebuildStep: %v", err)
		}
	}
	for _, a := range addrs {
		checkTrack(t, s2, a, B)
	}
}

// crashPattern is the deterministic content a superstep's in-place
// rewrite produces — distinct from pattern so stale parity is
// detectable.
func crashPattern(buf []uint64, d, t int) {
	pattern(buf, d, t)
	delta := 0xdeadbeefcafef00d * uint64(31*d+7*t+1)
	for i := range buf {
		buf[i] ^= delta
	}
}

// resumeFrom models a crash-resume: the allocator metadata is restored
// from the manifest, track contents stay as the crashed process left
// them, and a fresh layer (empty rmwOld) decodes the manifest.
func resumeFrom(t *testing.T, raw disk.Store, allocSt disk.StoreState, manifest []uint64) *Store {
	t.Helper()
	if err := raw.AdoptState(allocSt); err != nil {
		t.Fatalf("AdoptState: %v", err)
	}
	s, err := Wrap(raw)
	if err != nil {
		t.Fatalf("Wrap: %v", err)
	}
	dec := words.NewDecoder(manifest)
	if err := s.DecodeState(dec); err != nil {
		t.Fatalf("DecodeState: %v", err)
	}
	if err := s.Reconcile(); err != nil {
		t.Fatalf("Reconcile: %v", err)
	}
	return s
}

// TestReconcileMidSuperstepCrash is the RAID write hole under the
// checkpoint discipline: a superstep rewrites striped tracks in place,
// the process dies before the barrier, and the resumed replay's parity
// arithmetic must not trust the crashed attempt's on-disk data as the
// barrier content the stored parity encodes. After the replayed
// barrier, a drive death must still reconstruct every track bitwise.
func TestReconcileMidSuperstepCrash(t *testing.T) {
	const D, B = 4, 8
	s, raw := mkStore(t, D, B)
	addrs := writeTracks(t, s, D, B, 4)
	if err := s.FlushParity(); err != nil {
		t.Fatalf("FlushParity: %v", err)
	}
	enc := words.NewEncoder(nil)
	s.EncodeState(enc)
	manifest := append([]uint64(nil), enc.Words()...)
	allocSt := raw.State()

	// The deterministic superstep: rewrite a third of the striped
	// tracks in place. Run once by the crashed attempt (no barrier),
	// then identically by the resumed replay.
	superstep := func(s *Store) {
		buf := make([]uint64, B)
		for i, a := range addrs {
			if i%3 != 0 {
				continue
			}
			crashPattern(buf, a.Disk, a.Track)
			if err := s.WriteOp([]disk.WriteReq{{Disk: a.Disk, Track: a.Track, Src: append([]uint64(nil), buf...)}}); err != nil {
				t.Fatalf("WriteOp: %v", err)
			}
		}
	}
	superstep(s) // crashed attempt: writes land, no FlushParity, SIGKILL

	s2 := resumeFrom(t, raw, allocSt, manifest)
	superstep(s2) // replay
	if err := s2.FlushParity(); err != nil {
		t.Fatalf("replayed FlushParity: %v", err)
	}

	// Now lose a drive: every member must reconstruct bitwise.
	s2.DriveDied(1)
	want := make([]uint64, B)
	got := make([]uint64, B)
	for i, a := range addrs {
		if err := s2.ReadOp([]disk.ReadReq{{Disk: a.Disk, Track: a.Track, Dst: got}}); err != nil {
			t.Fatalf("ReadOp drive %d track %d: %v", a.Disk, a.Track, err)
		}
		if i%3 == 0 {
			crashPattern(want, a.Disk, a.Track)
		} else {
			pattern(want, a.Disk, a.Track)
		}
		for w := range want {
			if got[w] != want[w] {
				t.Fatalf("drive %d track %d word %d: got %#x want %#x", a.Disk, a.Track, w, got[w], want[w])
			}
		}
	}
}

// TestReconcilePostFlushCrash is the other window: the crash lands
// after FlushParity rewrote the parity tracks but before the journal
// commit, so the resumed manifest's checksums predate everything the
// barrier wrote. Without reconciliation the replay hard-fails with
// "member fails its checksum" while repairing the "stale" parity.
func TestReconcilePostFlushCrash(t *testing.T) {
	const D, B = 4, 8
	s, raw := mkStore(t, D, B)
	addrs := writeTracks(t, s, D, B, 4)
	if err := s.FlushParity(); err != nil {
		t.Fatalf("FlushParity: %v", err)
	}
	enc := words.NewEncoder(nil)
	s.EncodeState(enc)
	manifest := append([]uint64(nil), enc.Words()...)
	allocSt := raw.State()

	superstep := func(s *Store) {
		buf := make([]uint64, B)
		for i, a := range addrs {
			if i%2 != 0 {
				continue
			}
			crashPattern(buf, a.Disk, a.Track)
			if err := s.WriteOp([]disk.WriteReq{{Disk: a.Disk, Track: a.Track, Src: append([]uint64(nil), buf...)}}); err != nil {
				t.Fatalf("WriteOp: %v", err)
			}
		}
	}
	superstep(s)
	if err := s.FlushParity(); err != nil { // barrier completed ...
		t.Fatalf("FlushParity: %v", err)
	}
	// ... but the journal commit never landed: resume from the OLD manifest.

	s2 := resumeFrom(t, raw, allocSt, manifest)
	superstep(s2)
	if err := s2.FlushParity(); err != nil {
		t.Fatalf("replayed FlushParity: %v", err)
	}
	s2.DriveDied(2)
	want := make([]uint64, B)
	got := make([]uint64, B)
	for i, a := range addrs {
		if err := s2.ReadOp([]disk.ReadReq{{Disk: a.Disk, Track: a.Track, Dst: got}}); err != nil {
			t.Fatalf("ReadOp drive %d track %d: %v", a.Disk, a.Track, err)
		}
		if i%2 == 0 {
			crashPattern(want, a.Disk, a.Track)
		} else {
			pattern(want, a.Disk, a.Track)
		}
		for w := range want {
			if got[w] != want[w] {
				t.Fatalf("drive %d track %d word %d: got %#x want %#x", a.Disk, a.Track, w, got[w], want[w])
			}
		}
	}
}
