// Command embsp-bench runs the reproduction experiments: every row of
// the paper's Table 1, the Figure 2 reorganization, and the lemma and
// scaling claims. See EXPERIMENTS.md for the experiment index.
//
// Usage:
//
//	embsp-bench -list
//	embsp-bench -run table1/sorting [-scale medium]
//	embsp-bench -all [-scale small|medium|large]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"embsp"
	"embsp/internal/bench"
	"embsp/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	run := flag.String("run", "", "comma-separated experiment ids to run")
	all := flag.Bool("all", false, "run every experiment")
	scaleFlag := flag.String("scale", "medium", "workload scale: small, medium or large")
	redundancyFlag := flag.String("redundancy", "", "drive redundancy for every run: none, mirror or parity")
	scrub := flag.Bool("scrub", false, "background scrub between supersteps (requires -redundancy parity)")
	pipelineBaseline := flag.String("pipeline-baseline", "", "measure the group pipeline and write the JSON baseline (BENCH_pipeline.json) to this path")
	clusterBaseline := flag.String("cluster-baseline", "", "measure the multi-process cluster runtime and write the JSON baseline (BENCH_cluster.json) to this path")
	debugAddr := flag.String("debug-addr", "", "serve pprof, expvar and /metrics on this address while experiments run (medium/large sweeps take minutes; profile them live)")
	flag.Parse()

	if *debugAddr != "" {
		_, actual, err := obs.Serve(*debugAddr, obs.NewRegistry())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug: serving pprof, expvar and /metrics on http://%s\n", actual)
	}

	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *redundancyFlag != "" || *scrub {
		mode, err := embsp.ParseRedundancy(*redundancyFlag)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if *scrub && mode != embsp.RedundancyParity {
			fmt.Fprintln(os.Stderr, "-scrub requires -redundancy parity")
			os.Exit(2)
		}
		bench.SetRedundancy(mode, *scrub)
	}

	switch {
	case *pipelineBaseline != "":
		if err := bench.WritePipelineBaseline(*pipelineBaseline, scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("pipeline baseline written to %s\n", *pipelineBaseline)
	case *clusterBaseline != "":
		if err := bench.WriteClusterBaseline(*clusterBaseline, scale); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("cluster baseline written to %s\n", *clusterBaseline)
	case *list:
		for _, e := range bench.Experiments() {
			fmt.Printf("%-18s %s\n", e.ID, e.Title)
			fmt.Printf("%-18s   reproduces: %s\n", "", e.Reproduces)
		}
	case *all:
		for _, e := range bench.Experiments() {
			runOne(e, scale)
		}
	case *run != "":
		for _, id := range strings.Split(*run, ",") {
			e, ok := bench.Find(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (use -list)\n", id)
				os.Exit(2)
			}
			runOne(e, scale)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runOne(e bench.Experiment, scale bench.Scale) {
	fmt.Printf("=== %s — %s\n", e.ID, e.Reproduces)
	start := time.Now()
	if err := e.Run(os.Stdout, scale); err != nil {
		fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
		os.Exit(1)
	}
	fmt.Printf("--- %s done in %v\n\n", e.ID, time.Since(start).Round(time.Millisecond))
}
