// Command embsp-layout visualizes the paper's Figure 2: the
// reorganization performed by Algorithm 2 (SimulateRouting) from the
// standard linked format produced by the randomized writing phase to
// the standard consecutive format the next fetch phase streams with
// fully parallel I/O. It also prints the configured machine — the
// paper's Figure 1 model.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"embsp/internal/core"
	"embsp/internal/obs"
)

func main() {
	v := flag.Int("v", 8, "virtual processors")
	d := flag.Int("d", 4, "disk drives")
	b := flag.Int("b", 8, "block (track) size in words")
	per := flag.Int("blocks", 2, "message blocks per virtual processor")
	k := flag.Int("k", 2, "group size (VPs simulated together)")
	seed := flag.Uint64("seed", 0xF162, "random seed")
	report := flag.Bool("report", false, "print a per-phase wall-clock breakdown of the demo to stderr")
	flag.Parse()

	var tr *obs.Tracer
	if *report {
		tr = obs.New()
	}
	fmt.Printf("EM-BSP machine (Figure 1): 1 processor, D=%d drives, B=%d words/track;\n", *d, *b)
	fmt.Printf("one parallel I/O operation moves up to %d words (one track per drive).\n\n", *d**b)
	start := time.Now()
	if err := core.DemoRouting(os.Stdout, tr, *v, *d, *b, *per, *k, *seed); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *report {
		obs.WriteReport(os.Stderr, tr.Phases(), time.Since(start))
	}
}
