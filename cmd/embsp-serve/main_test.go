package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"embsp/internal/jobs"
	"embsp/internal/journal"
	"embsp/internal/workload"
)

// TestServeHelper is the daemon under test: the e2e tests below
// re-execute the test binary with this env set, so they can SIGKILL
// or SIGTERM a real embsp-serve process.
func TestServeHelper(t *testing.T) {
	if os.Getenv("EMBSP_SERVE_HELPER") != "1" {
		t.Skip("helper process for the daemon e2e tests")
	}
	os.Exit(run(strings.Split(os.Getenv("EMBSP_SERVE_ARGS"), "\x1f"), os.Stdout, os.Stderr))
}

type lockedBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *lockedBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *lockedBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

// startDaemon launches embsp-serve as a child process over state and
// returns the command, its base URL, and its combined output buffer.
func startDaemon(t *testing.T, state string) (*exec.Cmd, string, *lockedBuf) {
	t.Helper()
	addrFile := filepath.Join(t.TempDir(), "addr")
	args := []string{"-addr", "127.0.0.1:0", "-addr-file", addrFile, "-state", state}
	cmd := exec.Command(os.Args[0], "-test.run", "TestServeHelper$")
	cmd.Env = append(os.Environ(),
		"EMBSP_SERVE_HELPER=1",
		"EMBSP_SERVE_ARGS="+strings.Join(args, "\x1f"))
	out := &lockedBuf{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
	})
	deadline := time.Now().Add(30 * time.Second)
	for {
		if buf, err := os.ReadFile(addrFile); err == nil && len(buf) > 0 {
			return cmd, "http://" + string(buf), out
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never wrote %s; output:\n%s", addrFile, out)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func submitJob(t *testing.T, url, body string) jobs.Job {
	t.Helper()
	resp, err := http.Post(url+"/jobs", "application/json", bytes.NewBufferString(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		var buf bytes.Buffer
		buf.ReadFrom(resp.Body) //nolint:errcheck
		t.Fatalf("submit status %d: %s", resp.StatusCode, buf.String())
	}
	var j jobs.Job
	if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
		t.Fatal(err)
	}
	return j
}

func getJob(t *testing.T, url, id string) (jobs.Job, error) {
	t.Helper()
	resp, err := http.Get(url + "/jobs/" + id)
	if err != nil {
		return jobs.Job{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return jobs.Job{}, fmt.Errorf("status %d", resp.StatusCode)
	}
	var j jobs.Job
	return j, json.NewDecoder(resp.Body).Decode(&j)
}

func pollJob(t *testing.T, url, id string, pred func(jobs.Job) bool) jobs.Job {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	var last jobs.Job
	for time.Now().Before(deadline) {
		if j, err := getJob(t, url, id); err == nil {
			last = j
			if pred(j) {
				return j
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s stuck: state=%s attempts=%d err=%q", id, last.State, last.Attempts, last.Error)
	return jobs.Job{}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return buf.String()
}

const slowJob = `{"workload":{"alg":"sort","n":96,"v":6,"seed":21},"drive_latency_us":3000}`

func slowJobRequest() jobs.Request {
	return jobs.Request{
		Workload:       workload.Spec{Alg: "sort", N: 96, V: 6, Seed: 21},
		DriveLatencyUS: 3000,
	}
}

// TestKillRestartResume is the headline crash-resume e2e: SIGKILL the
// daemon mid-superstep, restart it over the same state root, and the
// job finishes with a Result fingerprint bitwise identical to a clean
// un-killed run.
func TestKillRestartResume(t *testing.T) {
	state := t.TempDir()
	cmd, url, out := startDaemon(t, state)

	j := submitJob(t, url, slowJob)
	if !strings.Contains(getBody(t, url+"/metrics"), "embsp_jobs_submitted 1") {
		t.Error("/metrics does not report the submission")
	}
	// Wait until the run is mid-flight with at least one committed
	// barrier, then pull the plug.
	stateDir := filepath.Join(state, j.StateDir)
	pollJob(t, url, j.ID, func(j jobs.Job) bool {
		n, err := journal.Committed(stateDir)
		return err == nil && n > 0 && j.State == jobs.StateRunning
	})
	if err := cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	err := cmd.Wait()
	if err == nil {
		t.Fatalf("SIGKILLed daemon exited cleanly; output:\n%s", out)
	}
	if ws, ok := cmd.ProcessState.Sys().(syscall.WaitStatus); !ok || !ws.Signaled() || ws.Signal() != syscall.SIGKILL {
		t.Fatalf("daemon did not die of SIGKILL: %v", cmd.ProcessState)
	}

	// Restart over the same root: the manifest replays, the job is
	// re-adopted and resumed from its journal.
	cmd2, url2, out2 := startDaemon(t, state)
	j = pollJob(t, url2, j.ID, func(j jobs.Job) bool { return j.State.Terminal() })
	if j.State != jobs.StateDone || !j.Resumed {
		t.Fatalf("state=%s resumed=%v err=%q; daemon output:\n%s", j.State, j.Resumed, j.Error, out2)
	}
	want, err := slowJobRequest().RunOnce(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if j.Result == nil || j.Result.Fingerprint != want.Fingerprint {
		t.Errorf("resumed fingerprint %+v, want %q", j.Result, want.Fingerprint)
	}
	metrics := getBody(t, url2+"/metrics")
	for _, m := range []string{"embsp_jobs_adopted 1", "embsp_jobs_resumed 1", "embsp_jobs_done 1"} {
		if !strings.Contains(metrics, m) {
			t.Errorf("/metrics after restart missing %q", m)
		}
	}

	// Graceful goodbye: SIGTERM with nothing running exits 0.
	if err := cmd2.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd2.Wait(); err != nil {
		t.Fatalf("drained daemon exited with %v; output:\n%s", err, out2)
	}
}

// TestGracefulDrainPersistsInterrupted: SIGTERM drains to the next
// journal commit, exits 0, and leaves the job marked interrupted in
// the manifest for the next daemon to finish.
func TestGracefulDrainPersistsInterrupted(t *testing.T) {
	state := t.TempDir()
	cmd, url, out := startDaemon(t, state)
	j := submitJob(t, url, slowJob)
	stateDir := filepath.Join(state, j.StateDir)
	pollJob(t, url, j.ID, func(j jobs.Job) bool {
		n, err := journal.Committed(stateDir)
		return err == nil && n > 0 && j.State == jobs.StateRunning
	})
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := cmd.Wait(); err != nil {
		t.Fatalf("drain exited with %v; output:\n%s", err, out)
	}
	buf, err := os.ReadFile(filepath.Join(state, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	var m struct {
		Jobs []jobs.Job `json:"jobs"`
	}
	if err := json.Unmarshal(buf, &m); err != nil {
		t.Fatal(err)
	}
	if len(m.Jobs) != 1 || m.Jobs[0].State != jobs.StateInterrupted {
		t.Fatalf("manifest after drain: %+v, want one interrupted job", m.Jobs)
	}

	cmd2, url2, out2 := startDaemon(t, state)
	j = pollJob(t, url2, j.ID, func(j jobs.Job) bool { return j.State.Terminal() })
	if j.State != jobs.StateDone || !j.Resumed {
		t.Fatalf("state=%s resumed=%v err=%q; output:\n%s", j.State, j.Resumed, j.Error, out2)
	}
	want, err := slowJobRequest().RunOnce(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if j.Result.Fingerprint != want.Fingerprint {
		t.Errorf("fingerprint %q != clean run %q", j.Result.Fingerprint, want.Fingerprint)
	}
	cmd2.Process.Signal(syscall.SIGTERM) //nolint:errcheck
	cmd2.Wait()                          //nolint:errcheck
}

// TestSecondSignalForcesExit: during a graceful drain a second signal
// must not wait for the barrier — the daemon exits immediately with
// the conventional 128+signal code.
func TestSecondSignalForcesExit(t *testing.T) {
	state := t.TempDir()
	cmd, url, out := startDaemon(t, state)
	// 20ms per track puts the next barrier far away, so the drain
	// would take a long time without the second signal.
	submitJob(t, url, `{"workload":{"alg":"sort","n":96,"v":6,"seed":22},"drive_latency_us":20000}`)
	pollJob(t, url, "j1", func(j jobs.Job) bool { return j.State == jobs.StateRunning })

	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for !strings.Contains(out.String(), "draining") {
		if time.Now().After(deadline) {
			t.Fatalf("no drain message after SIGTERM; output:\n%s", out)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("daemon still alive 10s after the second SIGTERM; output:\n%s", out)
	}
	if code := cmd.ProcessState.ExitCode(); code != 128+int(syscall.SIGTERM) {
		t.Errorf("exit code %d, want %d; output:\n%s", code, 128+int(syscall.SIGTERM), out)
	}
	if !strings.Contains(out.String(), "forcing immediate exit") {
		t.Errorf("missing force-exit message; output:\n%s", out)
	}
}
