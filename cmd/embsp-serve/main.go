// Command embsp-serve runs the EM-BSP simulation as a service: an
// HTTP/JSON API over a supervised run queue. Jobs are named workload
// specs executed on per-job state directories under -state, with
// admission control (per-tenant memory quotas, bounded queue),
// retry with backoff for transient faults, per-job deadlines, and
// crash-resume: the queue is persisted in a fsynced manifest, and a
// restarted daemon re-adopts unfinished jobs and resumes their runs
// from their superstep journals.
//
// SIGTERM or SIGINT drains gracefully — running jobs stop at their
// next journal commit and are marked interrupted for the next start.
// A second signal forces immediate exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"embsp/internal/jobs"
	"embsp/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("embsp-serve", flag.ContinueOnError)
	fs.SetOutput(stderr)
	addr := fs.String("addr", "127.0.0.1:8080", "address to listen on (use :0 for an ephemeral port)")
	addrFile := fs.String("addr-file", "", "write the actually-bound address to this file once listening")
	state := fs.String("state", "", "state root directory for the job manifest and per-job journals (required)")
	workers := fs.Int("workers", 4, "maximum concurrently running jobs")
	queue := fs.Int("queue", 64, "maximum live (queued+running) jobs before submissions are refused")
	memGlobal := fs.Int64("mem-global", 0, "daemon-wide simulated-memory budget in words, 0 = unlimited")
	memTenant := fs.Int64("mem-tenant", 0, "per-tenant simulated-memory quota in words, 0 = unlimited")
	diskTenant := fs.Int64("disk-tenant", 0, "per-tenant state-directory disk quota in bytes, 0 = unlimited")
	retain := fs.Duration("retain", 0, "drop terminal jobs older than this from the manifest on startup, 0 = keep forever")
	drainTimeout := fs.Duration("drain-timeout", time.Minute, "how long a graceful shutdown waits for running jobs to reach a journal commit")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *state == "" {
		fmt.Fprintln(stderr, "embsp-serve: -state is required")
		return 2
	}

	sup, err := jobs.New(jobs.Config{
		Root:            *state,
		Workers:         *workers,
		QueueDepth:      *queue,
		GlobalMemWords:  *memGlobal,
		TenantMemWords:  *memTenant,
		TenantDiskBytes: *diskTenant,
		Retain:          *retain,
		Metrics:         obs.NewRegistry(),
	})
	if err != nil {
		fmt.Fprintln(stderr, "embsp-serve:", err)
		return 1
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(stderr, "embsp-serve:", err)
		return 1
	}
	bound := ln.Addr().String()
	if *addrFile != "" {
		// Written atomically so a script polling for the file never
		// reads a partial address.
		tmp := *addrFile + ".tmp"
		if err := os.WriteFile(tmp, []byte(bound), 0o666); err != nil {
			fmt.Fprintln(stderr, "embsp-serve:", err)
			return 1
		}
		if err := os.Rename(tmp, *addrFile); err != nil {
			fmt.Fprintln(stderr, "embsp-serve:", err)
			return 1
		}
	}

	sup.Start()
	srv := &http.Server{Handler: sup.Handler()}
	go srv.Serve(ln) //nolint:errcheck // ErrServerClosed on shutdown
	fmt.Fprintf(stdout, "embsp-serve: listening on %s, state in %s\n", bound, *state)

	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	sig := <-sigc
	fmt.Fprintf(stderr, "embsp-serve: %v: draining — running jobs stop at their next journal commit (signal again to force exit)\n", sig)

	done := make(chan int, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		code := 0
		if err := sup.Drain(ctx); err != nil {
			fmt.Fprintln(stderr, "embsp-serve:", err)
			code = 1
		}
		srv.Shutdown(ctx) //nolint:errcheck // listener teardown
		done <- code
	}()
	select {
	case code := <-done:
		fmt.Fprintln(stdout, "embsp-serve: drained")
		return code
	case sig = <-sigc:
		fmt.Fprintf(stderr, "embsp-serve: %v again: forcing immediate exit\n", sig)
		if s, ok := sig.(syscall.Signal); ok {
			return 128 + int(s)
		}
		return 130
	}
}
