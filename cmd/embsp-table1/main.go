// Command embsp-table1 regenerates the paper's Table 1 in one shot:
// for every row it runs the CGM algorithm through the EM simulation
// on the standard machine sweep, verifies the outputs against the
// in-memory reference, and prints the measured I/O alongside the
// paper's complexity entries and the sequential EM baselines.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"embsp/internal/bench"
	"embsp/internal/obs"
)

func main() {
	scaleFlag := flag.String("scale", "medium", "workload scale: small, medium or large")
	debugAddr := flag.String("debug-addr", "", "serve pprof, expvar and /metrics on this address while the sweep runs")
	flag.Parse()
	scale, err := bench.ParseScale(*scaleFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *debugAddr != "" {
		_, actual, err := obs.Serve(*debugAddr, obs.NewRegistry())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug: serving pprof, expvar and /metrics on http://%s\n", actual)
	}

	fmt.Println("Table 1 reproduction — Dehne, Dittrich, Hutchinson (SPAA '97 / Algorithmica 2003)")
	fmt.Println("New parallel EM algorithms obtained by simulating CGM algorithms,")
	fmt.Println("vs. previously known sequential EM methods. See EXPERIMENTS.md.")
	fmt.Println()
	start := time.Now()
	for _, e := range bench.Experiments() {
		if !strings.HasPrefix(e.ID, "table1/") {
			continue
		}
		if err := e.Run(os.Stdout, scale); err != nil {
			fmt.Fprintf(os.Stderr, "%s failed: %v\n", e.ID, err)
			os.Exit(1)
		}
	}
	fmt.Printf("all rows reproduced and verified in %v\n", time.Since(start).Round(time.Millisecond))
}
