package main

import (
	"bufio"
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"testing"
	"time"
)

// TestMain lets this test binary masquerade as embsp-cluster: spawn
// mode and the subprocess tests re-exec os.Args[0] with reexecEnv set,
// which lands here and dispatches straight into run(). That makes
// every spawned worker and coordinator a real OS process, so SIGKILL
// in these tests is the real syscall, not a simulation.
func TestMain(m *testing.M) {
	if os.Getenv(reexecEnv) == "1" {
		os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

func workloadArgs(p int, root string) []string {
	return []string{
		"-alg", "sort", "-n", "256", "-v", "8", "-p", fmt.Sprint(p),
		"-d", "2", "-b", "16", "-seed", "9", "-state-dir", root,
	}
}

func TestSpawnSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	var stdout, stderr bytes.Buffer
	args := append(workloadArgs(2, t.TempDir()), "-spawn", "-check")
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "check: ok") {
		t.Fatalf("no bitwise-identity check in output:\n%s", stdout.String())
	}
	if !strings.Contains(stdout.String(), "fingerprint: ") {
		t.Fatalf("no fingerprint line:\n%s", stdout.String())
	}
}

// TestSpawnWorkerSIGKILL kills worker 1 — a real child process, real
// SIGKILL — right after it fsyncs its PREPARE record, mid two-phase
// commit. The coordinator respawns it, the rejoin handshake presumes
// the undecided record aborted, the superstep replays, and the final
// Result is bitwise identical to the in-process engine.
func TestSpawnWorkerSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	var stdout, stderr bytes.Buffer
	args := append(workloadArgs(3, t.TempDir()),
		"-spawn", "-check", "-kill-worker", "1", "-kill-at", "prepared@1")
	if code := run(args, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "check: ok") {
		t.Fatalf("run survived the kill but is not identical:\n%s", stdout.String())
	}
}

// TestCoordinatorSIGKILL runs everything as subprocesses: two join-mode
// workers plus a coordinator that SIGKILLs itself right after the 2PC
// decision record lands and before any worker hears COMMIT. The
// workers outlive it and redial; a second coordinator invocation with
// the same command line resumes from the decision journal, commits the
// workers' prepared records through the rejoin handshake, and finishes
// bitwise identical.
func TestCoordinatorSIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	root := t.TempDir()
	base := workloadArgs(2, root)

	coord1 := exec.Command(os.Args[0], append([]string{"-listen", "127.0.0.1:0", "-kill-at", "decided@1"}, base...)...)
	coord1.Env = append(os.Environ(), reexecEnv+"=1")
	stderrPipe, err := coord1.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := coord1.Start(); err != nil {
		t.Fatal(err)
	}
	defer coord1.Process.Kill() //nolint:errcheck

	// The coordinator prints its bound address; everything after is
	// relayed so failures stay debuggable.
	addrc := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderrPipe)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.LastIndex(line, " on "); i >= 0 && strings.Contains(line, "coordinating") {
				select {
				case addrc <- line[i+4:]:
				default:
				}
			}
			t.Logf("coord1: %s", line)
		}
	}()
	var addr string
	select {
	case addr = <-addrc:
	case <-time.After(20 * time.Second):
		t.Fatal("coordinator never announced its address")
	}

	workers := make([]*exec.Cmd, 2)
	for i := range workers {
		w := exec.Command(os.Args[0], append([]string{"-join", addr, "-node", fmt.Sprint(i)}, base...)...)
		w.Env = append(os.Environ(), reexecEnv+"=1")
		w.Stdout, w.Stderr = os.Stderr, os.Stderr
		if err := w.Start(); err != nil {
			t.Fatal(err)
		}
		workers[i] = w
		defer w.Process.Kill() //nolint:errcheck
	}

	// The coordinator must die by its own SIGKILL, not exit cleanly.
	err = coord1.Wait()
	if err == nil {
		t.Fatal("coordinator exited cleanly; the kill probe never fired")
	}
	if coord1.ProcessState.ExitCode() != -1 {
		t.Fatalf("coordinator exit: %v (want SIGKILL)", coord1.ProcessState)
	}

	// Restart on the same address with the same state; workers are
	// still redialing it.
	var stdout, stderr bytes.Buffer
	coord2 := exec.Command(os.Args[0], append([]string{"-listen", addr, "-check"}, base...)...)
	coord2.Env = append(os.Environ(), reexecEnv+"=1")
	coord2.Stdout, coord2.Stderr = &stdout, &stderr
	if err := coord2.Run(); err != nil {
		t.Fatalf("restarted coordinator: %v\nstdout:\n%s\nstderr:\n%s", err, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "check: ok") {
		t.Fatalf("resumed run is not identical:\n%s\n%s", stdout.String(), stderr.String())
	}

	for i, w := range workers {
		if err := w.Wait(); err != nil {
			t.Fatalf("worker %d exit: %v", i, err)
		}
	}
}

func TestWorkerArgsFilter(t *testing.T) {
	in := []string{
		"-spawn", "-check", "-alg", "sort", "-n", "256", "-kill-at", "prepared@1",
		"-kill-worker", "1", "-state-dir", "/tmp/x", "-net-faults", "drop=0.1",
		"-listen", ":7000", "-seed=5", "-secret", "hunter2", "-heartbeat", "1s",
		"-heartbeat-timeout", "4s", "-replicate=false", "-spares", "2", "-wipe",
	}
	got := strings.Join(workerArgs(in), " ")
	want := "-alg sort -n 256 -state-dir /tmp/x -net-faults drop=0.1 -seed=5" +
		" -secret hunter2 -heartbeat 1s -heartbeat-timeout 4s"
	if got != want {
		t.Fatalf("workerArgs:\n got %q\nwant %q", got, want)
	}
}

func TestParseNetPlan(t *testing.T) {
	plan, err := parseNetPlan("drop=0.1,dup=0.05,delay=0.2@2ms,cleanafter=3", 7)
	if err != nil {
		t.Fatal(err)
	}
	if plan.DropRate != 0.1 || plan.DupRate != 0.05 || plan.DelayRate != 0.2 ||
		plan.Delay != 2*time.Millisecond || plan.CleanAfter != 3 || plan.Seed != 7 {
		t.Fatalf("parsed %+v", plan)
	}
	if _, err := parseNetPlan("drop=2.0", 1); err == nil {
		t.Fatal("rate 2.0 accepted")
	}
	if _, err := parseNetPlan("delay=0.5", 1); err == nil {
		t.Fatal("delay without duration accepted")
	}
}
