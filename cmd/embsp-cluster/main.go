// Command embsp-cluster runs one Table 1 workload across p real
// worker processes: each worker simulates its own node's share of the
// EM-BSP* machine over a private state directory, the coordinator
// relays size-b packet exchange and drives every compound-superstep
// barrier through a two-phase commit over the per-node journals. The
// Result is bitwise identical to the in-process engine (-check proves
// it), and SIGKILLing any worker — or the coordinator itself — leaves
// journals from which the run continues exactly.
//
// Spawn mode (one command, local processes):
//
//	embsp-cluster -spawn -alg sort -n 65536 -p 4 -state-dir /tmp/c
//
// Join mode (processes started by hand or by an init system):
//
//	embsp-cluster -listen :7000 -alg sort -n 65536 -p 2 -state-dir /tmp/c
//	embsp-cluster -join host:7000 -node 0 -alg sort -n 65536 -p 2 -state-dir /tmp/c
//	embsp-cluster -join host:7000 -node 1 -alg sort -n 65536 -p 2 -state-dir /tmp/c
//
// Every process of one run must be given the same workload and machine
// flags; a mismatch is caught at the join handshake by the config
// fingerprint. A killed coordinator is restarted with the same command
// line (the decision journal in -state-dir resumes it); a killed
// worker likewise, or automatically in spawn mode.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"embsp/internal/bsp"
	"embsp/internal/cluster"
	"embsp/internal/core"
	"embsp/internal/fault"
	"embsp/internal/obs"
	"embsp/internal/workload"
)

// reexecEnv lets the test binary masquerade as embsp-cluster for the
// processes spawn mode launches; the real binary ignores it.
const reexecEnv = "EMBSP_CLUSTER_REEXEC"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// killSpec is the parsed -kill-at flag: SIGKILL this process the
// first time the named probe phase fires at the given superstep.
type killSpec struct {
	phase string
	step  int
}

func parseKillAt(spec string) (killSpec, error) {
	phase, stepStr, ok := strings.Cut(spec, "@")
	if !ok {
		return killSpec{}, fmt.Errorf("bad -kill-at %q: want phase@step", spec)
	}
	step, err := strconv.Atoi(stepStr)
	if err != nil {
		return killSpec{}, fmt.Errorf("bad -kill-at step %q: %v", stepStr, err)
	}
	return killSpec{phase: phase, step: step}, nil
}

// probe returns a probe hook that SIGKILLs the process — no deferred
// cleanup, exactly like a power loss — when the spec matches. A
// non-empty wipeDir is removed first: the machine does not just die,
// its disks are gone too (the permanent-loss scenario).
func (k killSpec) probe(wipeDir string) func(phase string, step int) {
	if k.phase == "" {
		return nil
	}
	return func(phase string, step int) {
		if phase == k.phase && step == k.step {
			if wipeDir != "" {
				os.RemoveAll(wipeDir) //nolint:errcheck
			}
			syscall.Kill(os.Getpid(), syscall.SIGKILL) //nolint:errcheck
		}
	}
}

// parseNetPlan turns -net-faults into a transport fault plan:
// drop=R,dup=R,delay=R@DUR,cleanafter=N (any subset).
func parseNetPlan(spec string, seed uint64) (fault.NetPlan, error) {
	plan := fault.NetPlan{Seed: seed}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return plan, fmt.Errorf("bad -net-faults field %q: want key=value", field)
		}
		switch key {
		case "drop", "dup":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return plan, fmt.Errorf("bad -net-faults rate %q: %v", field, err)
			}
			if key == "drop" {
				plan.DropRate = r
			} else {
				plan.DupRate = r
			}
		case "delay":
			rs, ds, ok := strings.Cut(val, "@")
			if !ok {
				return plan, fmt.Errorf("bad -net-faults field %q: want delay=R@DUR", field)
			}
			r, err := strconv.ParseFloat(rs, 64)
			if err != nil {
				return plan, fmt.Errorf("bad -net-faults rate %q: %v", field, err)
			}
			d, err := time.ParseDuration(ds)
			if err != nil {
				return plan, fmt.Errorf("bad -net-faults duration %q: %v", field, err)
			}
			plan.DelayRate, plan.Delay = r, d
		case "cleanafter":
			n, err := strconv.Atoi(val)
			if err != nil {
				return plan, fmt.Errorf("bad -net-faults field %q: %v", field, err)
			}
			plan.CleanAfter = n
		default:
			return plan, fmt.Errorf("unknown -net-faults key %q", key)
		}
	}
	return plan, plan.Validate()
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("embsp-cluster", flag.ContinueOnError)
	fs.SetOutput(stderr)
	alg := fs.String("alg", "sort", "workload: "+strings.Join(workload.Names(), " "))
	n := fs.Int("n", 1<<16, "problem size")
	v := fs.Int("v", 32, "virtual processors")
	procs := fs.Int("p", 2, "real processors (cluster nodes)")
	d := fs.Int("d", 4, "disks per processor")
	b := fs.Int("b", 512, "block size in words")
	mFactor := fs.Int("mfactor", 6, "memory = mfactor × µ (per processor)")
	g := fs.Float64("g", 1000, "I/O cost G per parallel operation")
	seed := fs.Uint64("seed", 1, "random seed")
	stateDir := fs.String("state-dir", "", "root state directory: coordinator journal in coord/, node i in node-<i>/ (required)")
	spawn := fs.Bool("spawn", false, "spawn the p workers as local child processes (and respawn dead ones)")
	listen := fs.String("listen", "127.0.0.1:0", "coordinator listen address")
	join := fs.String("join", "", "worker mode: coordinator address to join")
	node := fs.Int("node", -1, "worker mode: this worker's node id")
	check := fs.Bool("check", false, "after the run, replay in-process and verify bitwise identity")
	killAt := fs.String("kill-at", "", "crash hook phase@step: SIGKILL this process at that probe (worker phases: computed, prepared, committed; coordinator: prepare, decided); resumed invocations must not pass it again")
	killWorker := fs.Int("kill-worker", -1, "spawn mode: pass -kill-at to this worker instead of applying it here")
	netFaults := fs.String("net-faults", "", "network fault plan: drop=R,dup=R,delay=R@DUR,cleanafter=N")
	netSeed := fs.Uint64("net-seed", 1, "seed for the network fault schedule")
	ackTimeout := fs.Duration("ack-timeout", 0, "transport retransmission timeout (0 = default)")
	recvTimeout := fs.Duration("recv-timeout", 0, "coordinator per-phase response deadline (0 = default)")
	joinTimeout := fs.Duration("join-timeout", 0, "how long the coordinator waits for a worker to (re)join (0 = default)")
	replicate := fs.Bool("replicate", true, "replicate worker state to the coordinator at each commit; off, permanent worker loss fails the run")
	spare := fs.Bool("spare", false, "worker mode: join as a spare owning no node, adopted via replica restore when a worker is permanently lost")
	secret := fs.String("secret", "", "shared join-authentication secret; empty disables the HMAC challenge")
	wipe := fs.Bool("wipe", false, "with -kill-at: also wipe this worker's state directory before dying (permanent machine loss)")
	heartbeat := fs.Duration("heartbeat", 0, "link keep-alive interval; an idle peer is declared lost after -heartbeat-timeout (0 disables)")
	hbTimeout := fs.Duration("heartbeat-timeout", 0, "silence span that declares a peer lost (default 4x -heartbeat)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *stateDir == "" {
		fmt.Fprintln(stderr, "embsp-cluster: -state-dir is required (the journals live there)")
		return 2
	}

	inst, err := workload.Spec{Alg: *alg, N: *n, V: *v, Seed: *seed}.Build()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	prog := inst.Program
	cfg := workload.Machine(prog, *procs, *d, *b, *mFactor, *g)
	opts := core.Options{Seed: *seed}
	if err := core.ClusterCheck(cfg, opts); err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	var plan fault.NetPlan
	if *netFaults != "" {
		if plan, err = parseNetPlan(*netFaults, *netSeed); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}
	var kill killSpec
	if *killAt != "" {
		if kill, err = parseKillAt(*killAt); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	}

	if *spare && *join == "" {
		fmt.Fprintln(stderr, "embsp-cluster: -spare needs -join (a spare dials the coordinator)")
		return 2
	}
	if *join != "" {
		return runWorker(workerParams{
			addr: *join, node: *node, root: *stateDir,
			prog: prog, cfg: cfg, opts: opts, plan: plan,
			ackTimeout: *ackTimeout, heartbeat: *heartbeat, hbTimeout: *hbTimeout,
			spare: *spare, secret: *secret, wipe: *wipe, kill: kill,
		}, stderr)
	}
	return runCoordinator(coordParams{
		inst: inst, prog: prog, cfg: cfg, opts: opts, plan: plan,
		root: *stateDir, listen: *listen, spawn: *spawn,
		check: *check, kill: kill, killWorker: *killWorker,
		ackTimeout: *ackTimeout, recvTimeout: *recvTimeout, joinTimeout: *joinTimeout,
		replicate: *replicate, secret: *secret,
		heartbeat: *heartbeat, hbTimeout: *hbTimeout, wipe: *wipe,
		args: args,
	}, stdout, stderr)
}

type workerParams struct {
	addr string
	node int
	root string
	prog bsp.Program
	cfg  core.MachineConfig
	opts core.Options
	plan fault.NetPlan

	ackTimeout, heartbeat, hbTimeout time.Duration

	spare  bool
	secret string
	wipe   bool
	kill   killSpec
}

// runWorker is a worker process's whole life: open the node engine
// over its state directory (resuming from the journal when one is
// there), dial the coordinator, serve until SHUTDOWN — redialing
// through coordinator restarts. A spare opens nothing: it parks at the
// coordinator until a RESTORE makes it some lost worker's replacement.
func runWorker(p workerParams, stderr io.Writer) int {
	self := p.node
	var dir string
	if p.spare {
		// A spare is a different machine: its directory is its own, not
		// any node's slot, and stays its own after adoption.
		self = p.cfg.P + 1
		dir = filepath.Join(p.root, fmt.Sprintf("spare-%d", os.Getpid()))
	} else {
		if p.node < 0 || p.node >= p.cfg.P {
			fmt.Fprintf(stderr, "embsp-cluster: -join needs -node in [0, %d)\n", p.cfg.P)
			return 2
		}
		dir = nodeDir(p.root, p.node)
	}
	wipeDir := ""
	if p.wipe {
		wipeDir = dir
	}
	w := &cluster.Worker{
		Prog: p.prog, Cfg: p.cfg, Opts: p.opts, NodeID: p.node,
		Dir:    dir,
		Spare:  p.spare,
		Secret: p.secret,
		Probe:  p.kill.probe(wipeDir),
	}
	defer w.Close()
	err := w.Run(p.addr, true, cluster.LinkConfig{
		Self: self, Peer: p.cfg.P, Plan: p.plan,
		BackoffSeed:      uint64(self) + 1,
		AckTimeout:       p.ackTimeout,
		Heartbeat:        p.heartbeat,
		HeartbeatTimeout: p.hbTimeout,
	})
	if err != nil {
		fmt.Fprintf(stderr, "embsp-cluster: worker %d: %v\n", w.NodeID, err)
		return 1
	}
	return 0
}

func nodeDir(root string, id int) string {
	return filepath.Join(root, fmt.Sprintf("node-%d", id))
}

type coordParams struct {
	inst *workload.Instance
	prog bsp.Program
	cfg  core.MachineConfig
	opts core.Options
	plan fault.NetPlan

	root   string
	listen string
	spawn  bool
	check  bool

	kill       killSpec
	killWorker int
	wipe       bool

	replicate bool
	secret    string

	ackTimeout, recvTimeout, joinTimeout, heartbeat, hbTimeout time.Duration

	args []string // original command line, reused to spawn workers
}

func runCoordinator(p coordParams, stdout, stderr io.Writer) int {
	ln, err := net.Listen("tcp", p.listen)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	addr := ln.Addr().String()
	fmt.Fprintf(stderr, "embsp-cluster: coordinating %d workers on %s\n", p.cfg.P, addr)

	var respawn func(id int) error
	if p.spawn {
		launch := func(id int, withKill bool) error {
			args := []string{"-join", addr, "-node", strconv.Itoa(id)}
			args = append(args, workerArgs(p.args)...)
			if withKill && p.killWorker == id && p.kill.phase != "" {
				args = append(args, "-kill-at", p.kill.phase+"@"+strconv.Itoa(p.kill.step))
				if p.wipe {
					args = append(args, "-wipe")
				}
			}
			cmd := exec.Command(os.Args[0], args...)
			cmd.Stdout = os.Stderr
			cmd.Stderr = os.Stderr
			cmd.Env = append(os.Environ(), reexecEnv+"=1")
			if err := cmd.Start(); err != nil {
				return err
			}
			go cmd.Wait() //nolint:errcheck // children are monitored via the protocol
			return nil
		}
		for i := 0; i < p.cfg.P; i++ {
			if err := launch(i, true); err != nil {
				fmt.Fprintf(stderr, "embsp-cluster: spawn worker %d: %v\n", i, err)
				return 1
			}
		}
		respawn = func(id int) error { return launch(id, false) }
	}

	metrics := obs.NewRegistry()
	var coordKill func(string, int)
	if p.killWorker < 0 {
		coordKill = p.kill.probe("")
	}
	start := time.Now()
	res, err := cluster.Run(cluster.Config{
		Prog: p.prog, Cfg: p.cfg, Opts: p.opts,
		Dir:              filepath.Join(p.root, "coord"),
		Listener:         ln,
		Net:              p.plan,
		AckTimeout:       p.ackTimeout,
		RecvTimeout:      p.recvTimeout,
		JoinTimeout:      p.joinTimeout,
		Replicate:        p.replicate,
		Secret:           p.secret,
		Heartbeat:        p.heartbeat,
		HeartbeatTimeout: p.hbTimeout,
		Respawn:          respawn,
		Probe:            coordKill,
		Metrics:          metrics,
	})
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintln(stderr, err)
		fmt.Fprintf(stderr, "state saved; continue with the same command line (journals in %s)\n", p.root)
		return 1
	}

	fmt.Fprintf(stdout, "%s: %s\n", flagAlg(p.args), p.inst.Describe(res))
	fmt.Fprintf(stdout, "cluster: p=%d workers, D=%d B=%d M=%d words (k=%d VPs/group, %d groups)\n",
		p.cfg.P, p.cfg.D, p.cfg.B, p.cfg.M, res.EM.K, res.EM.Groups)
	fmt.Fprintf(stdout, "supersteps λ=%d\n", res.Costs.Supersteps)
	fmt.Fprintf(stdout, "I/O: %d parallel ops, utilization %.2f, T_IO=%.4g\n",
		res.EM.Run.Ops, res.EM.Run.Utilization(), res.EM.IOTime)
	fmt.Fprintf(stdout, "communication: %d packets (%d words), T_comm=%.4g\n",
		res.EM.CommPkts, res.EM.CommWords, res.EM.CommTime)
	fmt.Fprintf(stdout, "fingerprint: %016x\n", workload.Fingerprint(res))
	// Wire-level counters are wall-clock observability (like Overlap):
	// stderr, so stdout stays diffable across faulted and clean runs.
	meanBarrier := metrics.Histogram("cluster_barrier_wait_nanos").Snapshot().Mean()
	fmt.Fprintf(stderr, "wire: %d frames out (%d bytes), %d in (%d bytes), %d retransmits, %d faults injected, %d checksum rejects; mean barrier wait %v; wall %v\n",
		metrics.Counter("cluster_tx_frames").Value(), metrics.Counter("cluster_tx_bytes").Value(),
		metrics.Counter("cluster_rx_frames").Value(), metrics.Counter("cluster_rx_bytes").Value(),
		metrics.Counter("cluster_retries").Value(), metrics.Counter("cluster_faults_injected").Value(),
		metrics.Counter("cluster_checksum_rejects").Value(), meanBarrier, wall.Round(time.Millisecond))
	fmt.Fprintf(stderr, "robustness: %d heartbeat misses, %d migrations, %d replica bytes shipped, %d auth rejects\n",
		metrics.Counter("cluster_heartbeat_misses").Value(), metrics.Counter("cluster_migrations").Value(),
		metrics.Counter("cluster_replica_bytes").Value(), metrics.Counter("cluster_auth_rejects").Value())

	if p.check {
		tmp, err := os.MkdirTemp("", "embsp-cluster-check-*")
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer os.RemoveAll(tmp)
		oracle, err := core.Run(p.prog, p.cfg, core.Options{Seed: p.opts.Seed, StateDir: tmp})
		if err != nil {
			fmt.Fprintf(stderr, "check: in-process oracle failed: %v\n", err)
			return 1
		}
		want, got := workload.Fingerprint(oracle), workload.Fingerprint(res)
		if want != got {
			fmt.Fprintf(stderr, "check: FAILED: cluster fingerprint %016x, in-process %016x\n", got, want)
			return 1
		}
		fmt.Fprintf(stdout, "check: ok (bitwise identical to the in-process engine)\n")
	}
	return 0
}

// workerArgs filters the coordinator's command line down to the flags
// a worker shares: workload, machine, state and transport — dropping
// coordinator-only flags and any crash hook.
func workerArgs(args []string) []string {
	keep := map[string]bool{
		"-alg": true, "-n": true, "-v": true, "-p": true, "-d": true, "-b": true,
		"-mfactor": true, "-g": true, "-seed": true, "-state-dir": true,
		"-net-faults": true, "-net-seed": true, "-ack-timeout": true,
		"-secret": true, "-heartbeat": true, "-heartbeat-timeout": true,
	}
	var out []string
	for i := 0; i < len(args); i++ {
		a := args[i]
		name, inline, hasInline := strings.Cut(a, "=")
		if keep[name] {
			if hasInline {
				out = append(out, name+"="+inline)
			} else if i+1 < len(args) {
				out = append(out, a, args[i+1])
				i++
			}
		}
	}
	return out
}

// flagAlg digs the workload name back out of the argument list for
// the summary line (default "sort").
func flagAlg(args []string) string {
	for i := 0; i < len(args); i++ {
		if args[i] == "-alg" && i+1 < len(args) {
			return args[i+1]
		}
		if v, ok := strings.CutPrefix(args[i], "-alg="); ok {
			return v
		}
	}
	return "sort"
}
