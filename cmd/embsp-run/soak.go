package main

// Chaos-soak mode (-soak): for a wall-clock budget, repeatedly draw a
// random Table 1 workload, machine shape, redundancy mode and fault
// schedule — transient faults, permanent drive deaths, mid-run kills
// with journal resume — and check every completed run bitwise against
// the in-memory reference. Any divergence prints the full repro
// parameters and exits nonzero.

import (
	"context"
	"errors"
	"fmt"
	"os"
	"strings"
	"time"

	"embsp"
	"embsp/internal/prng"
	"embsp/internal/words"
	"embsp/internal/workload"
)

// soakCase is one drawn schedule, printable as a repro line.
type soakCase struct {
	alg       string
	n, v      int
	procs     int
	d, b      int
	seed      uint64
	mode      embsp.Redundancy
	scrub     bool
	plan      *embsp.FaultPlan
	killStep  int // superstep after whose commit the run is cancelled and resumed; -1 = none
	crashStep int // superstep during which one VP panics mid-superstep; -1 = none
	// Physical-schedule knobs, drawn independently for the first
	// attempt and the resume: the pipeline is outside the config
	// fingerprint, so a run may legally die under one schedule and
	// resume under another — the soak crosses them on purpose.
	pipeline, ioWorkers             int
	resumePipeline, resumeIOWorkers int
}

func (c soakCase) String() string {
	s := fmt.Sprintf("alg=%s n=%d v=%d p=%d d=%d b=%d seed=%d redundancy=%v scrub=%v pipeline=%d io-workers=%d",
		c.alg, c.n, c.v, c.procs, c.d, c.b, c.seed, c.mode, c.scrub, c.pipeline, c.ioWorkers)
	if c.killStep >= 0 || c.crashStep >= 0 {
		s += fmt.Sprintf(" resume-pipeline=%d resume-io-workers=%d", c.resumePipeline, c.resumeIOWorkers)
	}
	if c.plan != nil {
		s += fmt.Sprintf(" faults={seed=%d read=%g write=%g corrupt=%g faildrive=%d@%d failproc=%d}",
			c.plan.Seed, c.plan.ReadErrorRate, c.plan.WriteErrorRate, c.plan.CorruptRate,
			c.plan.FailDrive, c.plan.FailDriveOp, c.plan.FailProc)
	}
	if c.killStep >= 0 {
		s += fmt.Sprintf(" kill-after-step=%d", c.killStep)
	}
	if c.crashStep >= 0 {
		s += fmt.Sprintf(" crash-in-step=%d", c.crashStep)
	}
	return s
}

// crashProgram wraps a Program so one VP panics when it starts
// computing superstep step — a mid-superstep crash that leaves the
// failed superstep's partial in-place writes in the state directory
// behind the committed journal record, unlike killStep's clean
// cancellation at a committed barrier.
type crashProgram struct {
	embsp.Program
	step int
}

func (p *crashProgram) NewVP(id int) embsp.VP {
	vp := p.Program.NewVP(id)
	if id == p.Program.NumVPs()/2 {
		return &crashVP{VP: vp, step: p.step}
	}
	return vp
}

type crashVP struct {
	embsp.VP
	step int
}

func (v *crashVP) Step(env *embsp.Env, in []embsp.Message) (bool, error) {
	if env.Superstep() == v.step {
		panic(fmt.Sprintf("soak: injected crash in superstep %d", v.step))
	}
	return v.VP.Step(env, in)
}

// drawCase samples one schedule from r over the allowed workloads.
func drawCase(r *prng.Rand, table []string) soakCase {
	c := soakCase{
		alg:       table[r.Intn(len(table))],
		n:         40 + r.Intn(32),
		v:         4 + r.Intn(5),
		procs:     1 + 2*r.Intn(2), // 1 or 3
		d:         3 + r.Intn(2),
		b:         16,
		seed:      r.Uint64(),
		killStep:  -1,
		crashStep: -1,
	}
	c.pipeline = r.Intn(3) - 1       // off, auto, on
	c.ioWorkers = r.Intn(4) - 1      // synchronous, default, 1, 2
	c.resumePipeline = r.Intn(3) - 1 // the resume may switch schedules
	c.resumeIOWorkers = r.Intn(4) - 1
	if r.Bool() {
		c.mode = embsp.RedundancyParity
		c.scrub = r.Bool()
	} else {
		c.mode = embsp.RedundancyMirror
	}
	plan := &embsp.FaultPlan{
		Seed:           r.Uint64(),
		ReadErrorRate:  r.Float64() * 0.02,
		WriteErrorRate: r.Float64() * 0.02,
		CorruptRate:    r.Float64() * 0.02,
	}
	if r.Bool() {
		plan.FailDriveOp = int64(5 + r.Intn(80))
		plan.FailDrive = r.Intn(c.d)
		plan.FailProc = r.Intn(c.procs)
	}
	c.plan = plan
	if r.Bool() {
		if r.Bool() {
			c.killStep = r.Intn(3)
		} else {
			// >= 1 so at least one barrier committed before the crash.
			c.crashStep = 1 + r.Intn(3)
		}
	}
	return c
}

func soakImage(vp embsp.VP) string {
	enc := words.NewEncoder(nil)
	vp.Save(enc)
	return fmt.Sprint(enc.Words())
}

// runCase executes one schedule and compares it bitwise against the
// reference. It returns an error describing the divergence, if any.
func runCase(c soakCase) error {
	inst, err := (workload.Spec{Alg: c.alg, N: c.n, V: c.v, Seed: c.seed}).Build()
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	prog := inst.Program
	ref, err := embsp.RunReference(prog, c.seed)
	if err != nil {
		return fmt.Errorf("reference: %w", err)
	}
	cfg := embsp.MachineConfig{
		P: c.procs, M: 4 * prog.MaxContextWords(), D: c.d, B: c.b, G: 100,
		Cost: embsp.CostParams{GUnit: 1, GPkt: 64, Pkt: 64, L: 10},
	}
	opts := embsp.Options{
		Seed:       c.seed,
		FaultPlan:  c.plan,
		Redundancy: c.mode,
		Scrub:      c.scrub,
		Pipeline:   c.pipeline,
		IOWorkers:  c.ioWorkers,
	}
	var res *embsp.Result
	if c.killStep >= 0 || c.crashStep >= 0 {
		// Simulated power loss, then a resume from the journal that must
		// produce the identical Result. killStep cancels cleanly at a
		// committed barrier; crashStep panics mid-superstep, leaving the
		// failed superstep's partial writes in the state directory.
		dir, err := os.MkdirTemp("", "embsp-soak-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		opts.StateDir = dir
		if c.crashStep >= 0 {
			_, err = embsp.Run(&crashProgram{Program: prog, step: c.crashStep}, cfg, opts)
			var pe *embsp.ProgramError
			switch {
			case err == nil:
				// The run finished before the crash step: nothing to resume.
			case errors.As(err, &pe):
			default:
				return fmt.Errorf("crashed run: %w", err)
			}
		} else {
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			killOpts := opts
			killOpts.OnCommit = func(step int) {
				if step == c.killStep {
					cancel()
				}
			}
			_, err = embsp.RunContext(ctx, prog, cfg, killOpts)
			switch {
			case err == nil:
				// The run finished before the kill step: nothing to resume.
			case errors.Is(err, context.Canceled):
			default:
				return fmt.Errorf("killed run: %w", err)
			}
		}
		opts.Resume = true
		opts.Pipeline, opts.IOWorkers = c.resumePipeline, c.resumeIOWorkers
		res, err = embsp.Run(prog, cfg, opts)
		if err != nil {
			return fmt.Errorf("resume: %w", err)
		}
	} else {
		res, err = embsp.Run(prog, cfg, opts)
		if err != nil {
			return err
		}
	}
	for i, vp := range res.VPs {
		if soakImage(vp) != soakImage(ref.VPs[i]) {
			return fmt.Errorf("VP %d context differs from reference", i)
		}
	}
	return nil
}

// runSoak drives random schedules until the duration expires. It
// returns the process exit code.
func runSoak(duration time.Duration, algsCSV string, seed uint64) int {
	table := workload.Table1Names()
	if algsCSV != "" {
		want := make(map[string]bool)
		for _, a := range strings.Split(algsCSV, ",") {
			want[strings.TrimSpace(a)] = true
		}
		var filtered []string
		for _, name := range table {
			if want[name] {
				filtered = append(filtered, name)
				delete(want, name)
			}
		}
		if len(want) > 0 || len(filtered) == 0 {
			fmt.Fprintf(os.Stderr, "soak: unknown workloads in -soak-algs %q\n", algsCSV)
			return 2
		}
		table = filtered
	}
	r := prng.New(seed)
	deadline := time.Now().Add(duration)
	runs := 0
	for time.Now().Before(deadline) {
		c := drawCase(r, table)
		if err := runCase(c); err != nil {
			fmt.Fprintf(os.Stderr, "soak FAILED after %d clean runs: %v\nrepro: %s\n", runs, err, c)
			return 1
		}
		runs++
	}
	fmt.Printf("soak: %d runs over %v, all bitwise identical to the reference\n", runs, duration)
	return 0
}
