// Command embsp-run executes one Table 1 workload on a configurable
// simulated EM machine and prints the model costs — a quick way to
// explore how an algorithm's I/O responds to p, D, B, M and v without
// writing code.
//
// Usage examples:
//
//	embsp-run -alg sort -n 1048576 -p 1 -d 4 -b 1024
//	embsp-run -alg cc -n 65536 -p 4 -d 8 -v 128
//	embsp-run -alg lca -n 32768 -deterministic
//	embsp-run -alg sort -n 65536 -faults 0.01
//	embsp-run -alg permute -p 4 -faults read=0.02,corrupt=0.01,faildrive=2@500 -fault-seed 7
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"embsp"
	"embsp/internal/obs"
	"embsp/internal/workload"
)

// killProgram wraps a Program so that one VP hard-kills the process
// with SIGKILL — no deferred cleanup, exactly like a power loss — when
// it starts computing superstep killStep. It exists for the
// crash-recovery end-to-end test; the resumed invocation must not pass
// -kill-step again.
type killProgram struct {
	embsp.Program
	killStep int
}

func (p *killProgram) NewVP(id int) embsp.VP {
	vp := p.Program.NewVP(id)
	if id == p.Program.NumVPs()/2 {
		return &killVP{VP: vp, killStep: p.killStep}
	}
	return vp
}

type killVP struct {
	embsp.VP
	killStep int
}

func (k *killVP) Step(env *embsp.Env, in []embsp.Message) (bool, error) {
	if env.Superstep() == k.killStep {
		syscall.Kill(os.Getpid(), syscall.SIGKILL)
	}
	return k.VP.Step(env, in)
}

// parseFaultPlan turns the -faults flag value into a fault plan. A
// plain float r is shorthand for read=r,write=r,corrupt=r; the long
// form is a comma-separated list of key=value fields:
//
//	read=R write=R corrupt=R   per-block fault probabilities in [0,1)
//	firstop=N                  first operation index eligible for faults
//	faildrive=D@OP             drive D dies permanently at operation OP
//	failproc=P                 processor hit by the drive death (P>1 runs)
//	mirror                     write mirror copies even with no drive death
func parseFaultPlan(spec string, seed uint64) (*embsp.FaultPlan, error) {
	plan := &embsp.FaultPlan{Seed: seed}
	if r, err := strconv.ParseFloat(spec, 64); err == nil {
		plan.ReadErrorRate, plan.WriteErrorRate, plan.CorruptRate = r, r, r
		return plan, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		if field == "mirror" {
			plan.Mirror = true
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return nil, fmt.Errorf("bad -faults field %q: want key=value", field)
		}
		switch key {
		case "read", "write", "corrupt":
			r, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -faults rate %q: %v", field, err)
			}
			switch key {
			case "read":
				plan.ReadErrorRate = r
			case "write":
				plan.WriteErrorRate = r
			case "corrupt":
				plan.CorruptRate = r
			}
		case "firstop":
			n, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -faults field %q: %v", field, err)
			}
			plan.FirstOp = n
		case "faildrive":
			ds, ops, ok := strings.Cut(val, "@")
			if !ok {
				return nil, fmt.Errorf("bad -faults field %q: want faildrive=D@OP", field)
			}
			d, err := strconv.Atoi(ds)
			if err != nil {
				return nil, fmt.Errorf("bad -faults drive %q: %v", field, err)
			}
			op, err := strconv.ParseInt(ops, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("bad -faults operation %q: %v", field, err)
			}
			plan.FailDrive, plan.FailDriveOp = d, op
		case "failproc":
			p, err := strconv.Atoi(val)
			if err != nil {
				return nil, fmt.Errorf("bad -faults field %q: %v", field, err)
			}
			plan.FailProc = p
		default:
			return nil, fmt.Errorf("unknown -faults key %q", key)
		}
	}
	return plan, nil
}

// parseTiers turns the -tiers flag value into a tier chain spec. Each
// comma-separated field is words[:latency] — a tier cache capacity in
// words (0 selects the engine default) with an optional emulated
// per-track access latency — listed outermost first, matching
// Options.Tiers.
func parseTiers(spec string) ([]embsp.TierSpec, error) {
	var tiers []embsp.TierSpec
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		ws, ls, hasLat := strings.Cut(field, ":")
		w, err := strconv.ParseInt(ws, 10, 64)
		if err != nil || w < 0 {
			return nil, fmt.Errorf("bad -tiers field %q: want words[:latency] with words >= 0", field)
		}
		ts := embsp.TierSpec{Words: w}
		if hasLat {
			d, err := time.ParseDuration(ls)
			if err != nil {
				return nil, fmt.Errorf("bad -tiers latency in %q: %v", field, err)
			}
			if d < 0 {
				return nil, fmt.Errorf("bad -tiers latency in %q: want >= 0", field)
			}
			ts.Latency = d
		}
		tiers = append(tiers, ts)
	}
	if len(tiers) == 0 {
		return nil, fmt.Errorf("empty -tiers spec")
	}
	return tiers, nil
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the whole command, parameterized over its argument list and
// output streams so the CLI tests can drive it in-process. Model
// results go to stdout (kept byte-for-byte diffable between runs);
// everything wall-clock — the overlap line, the phase report, the
// metrics banner — goes to stderr.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("embsp-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	alg := fs.String("alg", "sort", "workload: "+strings.Join(workload.Names(), " "))
	n := fs.Int("n", 1<<16, "problem size")
	v := fs.Int("v", 32, "virtual processors")
	procs := fs.Int("p", 1, "real processors")
	d := fs.Int("d", 4, "disks per processor")
	b := fs.Int("b", 512, "block size in words")
	mFactor := fs.Int("mfactor", 6, "memory = mfactor × µ (per processor)")
	g := fs.Float64("g", 1000, "I/O cost G per parallel operation")
	seed := fs.Uint64("seed", 1, "random seed")
	det := fs.Bool("deterministic", false, "deterministic (CGM) block placement")
	faults := fs.String("faults", "", "fault plan: a rate (e.g. 0.01) or read=R,write=R,corrupt=R,firstop=N,faildrive=D@OP,failproc=P,mirror")
	faultSeed := fs.Uint64("fault-seed", 1, "seed for the fault schedule")
	maxRetries := fs.Int("max-retries", 0, "transient-fault retry budget per op (0 = default, -1 disables retries)")
	stateDir := fs.String("state-dir", "", "directory for durable on-disk state and the superstep journal")
	resume := fs.Bool("resume", false, "resume an interrupted run from the journal in -state-dir")
	killStep := fs.Int("kill-step", -1, "crash-test hook: SIGKILL the process mid-computation of this superstep")
	pipeline := fs.String("pipeline", "auto", "group pipeline (file-backed runs): auto, on or off")
	storeKind := fs.String("store", "file", "durable store backend for -state-dir runs: file (pread/pwrite) or mapped (mmap, zero-copy; falls back to file where unsupported)")
	tiersFlag := fs.String("tiers", "", "stack intermediate store tiers over the backend: comma-separated words[:latency] per tier, outermost first (e.g. 65536:50us; 0 words = engine default capacity; requires -state-dir)")
	ioWorkers := fs.Int("io-workers", 0, "per-drive I/O worker goroutines (0 = one per drive, -1 = synchronous)")
	driveLatency := fs.Duration("drive-latency", 0, "emulated per-track access latency of the file-backed drives (e.g. 1ms; 0 = none)")
	redundancyFlag := fs.String("redundancy", "", "drive redundancy: none, mirror or parity")
	scrub := fs.Bool("scrub", false, "background scrub between supersteps (requires -redundancy parity)")
	soak := fs.Bool("soak", false, "chaos-soak mode: randomized fault/kill/resume schedules over the Table 1 workloads, checked bitwise against the reference")
	soakDuration := fs.Duration("duration", 30*time.Second, "how long to keep soaking (-soak)")
	soakAlgs := fs.String("soak-algs", "", "comma-separated workload filter for -soak (default: all 13)")
	tracePath := fs.String("trace", "", "write a Chrome trace_event JSON timeline of the run to this file (chrome://tracing, Perfetto); with -resume the file is appended to")
	report := fs.Bool("report", false, "print a per-phase wall-clock breakdown of the run to stderr")
	metricsAddr := fs.String("metrics-addr", "", "serve the run's metrics (Prometheus text at /metrics, JSON at /metrics.json) plus pprof and expvar on this address while the run executes")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *soak {
		return runSoak(*soakDuration, *soakAlgs, *seed)
	}

	inst, err := workload.Spec{Alg: *alg, N: *n, V: *v, Seed: *seed}.Build()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	prog, describe := inst.Program, inst.Describe
	cfg := workload.Machine(prog, *procs, *d, *b, *mFactor, *g)
	opts := embsp.Options{
		Seed: *seed, Deterministic: *det, MaxRetries: *maxRetries,
		StateDir: *stateDir, Resume: *resume, Scrub: *scrub,
		IOWorkers: *ioWorkers, DriveLatency: *driveLatency,
	}
	switch *pipeline {
	case "auto":
	case "on":
		opts.Pipeline = 1
	case "off":
		opts.Pipeline = -1
	default:
		fmt.Fprintf(stderr, "bad -pipeline %q: want auto, on or off\n", *pipeline)
		return 2
	}
	switch *storeKind {
	case "file":
	case "mapped":
		if *stateDir == "" {
			fmt.Fprintln(stderr, "-store mapped requires -state-dir (the mapped store maps durable drive files)")
			return 2
		}
		opts.MappedStore = true
		if !embsp.MmapSupported() {
			fmt.Fprintln(stderr, "note: mmap is unsupported on this platform; falling back to the file store (results are identical)")
		}
	default:
		fmt.Fprintf(stderr, "bad -store %q: want file or mapped\n", *storeKind)
		return 2
	}
	if *tiersFlag != "" {
		if *stateDir == "" {
			fmt.Fprintln(stderr, "-tiers requires -state-dir (tiers stack over the durable store)")
			return 2
		}
		ts, err := parseTiers(*tiersFlag)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		opts.Tiers = ts
	}
	if *redundancyFlag != "" {
		mode, err := embsp.ParseRedundancy(*redundancyFlag)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		opts.Redundancy = mode
	}
	if *faults != "" {
		plan, err := parseFaultPlan(*faults, *faultSeed)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		opts.FaultPlan = plan
	}
	if *killStep >= 0 {
		prog = &killProgram{Program: prog, killStep: *killStep}
	}

	// Observability: a file-backed tracer for -trace, a memory-only one
	// when -report wants the phase totals or -metrics-addr wants live
	// phase histograms mid-run. Neither enters the config fingerprint,
	// so traced and untraced runs resume each other.
	var tr *embsp.Tracer
	if *tracePath != "" {
		tr, err = embsp.OpenTrace(*tracePath, *resume)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
	} else if *report || *metricsAddr != "" {
		tr = embsp.NewTracer()
	}
	defer tr.Close() //nolint:errcheck // write errors surface below
	var reg *embsp.MetricsRegistry
	if *metricsAddr != "" {
		reg = embsp.NewMetricsRegistry()
		actual, err := embsp.ServeMetrics(*metricsAddr, reg)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		fmt.Fprintf(stderr, "metrics: serving Prometheus text, pprof and expvar on http://%s\n", actual)
	}
	tr.AttachRegistry(reg)
	opts.Trace, opts.Metrics = tr, reg

	// SIGINT/SIGTERM stop the run at the next superstep barrier; with a
	// -state-dir the journal is left at the last committed superstep. A
	// second signal while the graceful stop is still draining — e.g. a
	// barrier wedged behind slow physical I/O, where ctrl-C would
	// otherwise appear ignored — forces an immediate hard exit with the
	// conventional 128+signal status.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer func() {
		signal.Stop(sigc)
		close(sigc)
	}()
	go func() {
		sig, ok := <-sigc
		if !ok {
			return
		}
		fmt.Fprintf(stderr, "embsp-run: %v: stopping at the next superstep barrier (signal again to force exit)\n", sig)
		cancel()
		if sig, ok = <-sigc; ok {
			fmt.Fprintf(stderr, "embsp-run: %v again: forcing immediate exit\n", sig)
			code := 130
			if s, isSys := sig.(syscall.Signal); isSys {
				code = 128 + int(s)
			}
			os.Exit(code)
		}
	}()

	start := time.Now()
	res, err := embsp.RunContext(ctx, prog, cfg, opts)
	wall := time.Since(start)
	if err != nil {
		fmt.Fprintln(stderr, err)
		if errors.Is(err, context.Canceled) && *stateDir != "" {
			fmt.Fprintf(stderr, "state saved; continue with: embsp-run -state-dir %s -resume (plus the original flags)\n", *stateDir)
		}
		return 1
	}
	fmt.Fprintf(stdout, "%s: %s\n", *alg, describe(res))
	fmt.Fprintf(stdout, "machine: p=%d D=%d B=%d M=%d words (k=%d VPs/group, %d groups)\n",
		cfg.P, cfg.D, cfg.B, cfg.M, res.EM.K, res.EM.Groups)
	fmt.Fprintf(stdout, "supersteps λ=%d\n", res.Costs.Supersteps)
	fmt.Fprintf(stdout, "I/O: %d parallel ops, %d blocks, utilization %.2f, T_IO=%.4g\n",
		res.EM.Run.Ops, res.EM.Run.Blocks(), res.EM.Run.Utilization(), res.EM.IOTime)
	if cfg.P > 1 {
		fmt.Fprintf(stdout, "communication: %d packets (%d words), T_comm=%.4g\n",
			res.EM.CommPkts, res.EM.CommWords, res.EM.CommTime)
	}
	fmt.Fprintf(stdout, "memory high-water: %d words; peak disk blocks/drive: %d\n",
		res.EM.MemHigh, res.EM.LiveBlocksPerDrive)
	// The overlap counters are wall-clock observability, not model
	// output: they go to stderr so two runs of the same workload stay
	// diffable on stdout (the crash-recovery CI check relies on this).
	// Only file-backed runs have a physical pipeline, so the line is
	// suppressed entirely for in-memory runs instead of printing
	// all-zero noise.
	if ov := res.EM.Overlap; *stateDir != "" && (ov.PrefetchIssued > 0 || ov.AsyncWrites > 0) {
		fmt.Fprintf(stderr, "pipeline: %d blocks prefetched (%d cache hits, %d misses), %d async writes, %.1fms stalled, peak %d transfers in flight\n",
			ov.PrefetchIssued, ov.PrefetchHits, ov.PrefetchMisses,
			ov.AsyncWrites, float64(ov.StallNanos)/1e6, ov.ConcurrentPeak)
	}
	// The opened backend and the tier cache counters are configuration
	// and wall-clock observability, outside the identity contract: like
	// the overlap line they go to stderr so tiered and flat runs of the
	// same workload stay byte-diffable on stdout.
	if res.EM.StoreBackend != "" {
		fmt.Fprintf(stderr, "store: backend %s\n", res.EM.StoreBackend)
	}
	for _, ts := range res.EM.Tiers {
		fmt.Fprintf(stderr, "store tier %d: cap %d words, %d hits, %d misses, %d fills, %d drains, high-water %d words\n",
			ts.Level, ts.CapWords, ts.Hits, ts.Misses, ts.Fills, ts.Drains, ts.HighWords)
	}
	if opts.FaultPlan != nil {
		em := res.EM
		fmt.Fprintf(stdout, "faults: %d injected (%d checksum failures, %d drive losses)\n",
			em.FaultsInjected, em.ChecksumFailures, em.DriveFailures)
		fmt.Fprintf(stdout, "recovery: %d retries (%d blocks), %d superstep replays, %d extra ops, %d mirror ops\n",
			em.Retries, em.RetriedBlocks, em.Replays, em.RecoveryOps, em.MirrorOps)
	}
	if opts.Redundancy == embsp.RedundancyParity {
		em := res.EM
		fmt.Fprintf(stdout, "parity: %d ops, %d parity blocks over %d striped, %d degraded ops, %d reconstructed, %d rebuilt\n",
			em.ParityOps, em.ParityBlocks, em.StripedBlocks, em.DegradedOps, em.ReconstructedBlocks, em.RebuiltBlocks)
		if opts.Scrub {
			fmt.Fprintf(stdout, "scrub: %d blocks verified, %d repaired\n", em.ScrubbedBlocks, em.ScrubRepairs)
		}
	}
	if *report {
		obs.WriteReport(stderr, tr.Phases(), wall)
	}
	if tr != nil {
		if err := tr.Close(); err != nil {
			fmt.Fprintf(stderr, "trace: %v\n", err)
			return 1
		}
	}
	return 0
}
