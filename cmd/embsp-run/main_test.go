package main

import (
	"bytes"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"embsp"
)

// runCLI drives the command in-process and returns (stdout, stderr,
// exit code).
func runCLI(t *testing.T, args ...string) (string, string, int) {
	t.Helper()
	var out, errb bytes.Buffer
	rc := run(args, &out, &errb)
	return out.String(), errb.String(), rc
}

// TestStdoutStaysDiffableAndOverlapGating pins the stdout/stderr
// split the crash-recovery CI check relies on: the model results on
// stdout are byte-for-byte identical between an in-memory and a
// file-backed run of the same workload, and the wall-clock pipeline
// overlap line appears only on the file-backed run's stderr.
func TestStdoutStaysDiffableAndOverlapGating(t *testing.T) {
	base := []string{"-alg", "sort", "-n", "4096", "-v", "8", "-seed", "3"}

	memOut, memErr, rc := runCLI(t, base...)
	if rc != 0 {
		t.Fatalf("in-memory run failed (rc=%d): %s", rc, memErr)
	}
	if strings.Contains(memErr, "pipeline:") {
		t.Errorf("in-memory run printed a pipeline overlap line:\n%s", memErr)
	}
	if strings.Contains(memOut, "pipeline:") {
		t.Errorf("overlap line leaked onto stdout:\n%s", memOut)
	}

	// The emulated drive latency routes transfers through the worker
	// queues: at zero latency the store's inline fast path generates
	// no overlap activity, and the all-zero line is suppressed.
	dir := t.TempDir()
	fileOut, fileErr, rc := runCLI(t, append(base, "-state-dir", dir, "-pipeline", "on", "-drive-latency", "2ms")...)
	if rc != 0 {
		t.Fatalf("file-backed run failed (rc=%d): %s", rc, fileErr)
	}
	if fileOut != memOut {
		t.Errorf("stdout differs between in-memory and file-backed runs:\n--- mem ---\n%s--- file ---\n%s", memOut, fileOut)
	}
	if !strings.Contains(fileErr, "pipeline:") {
		t.Errorf("file-backed pipelined run printed no overlap line; stderr:\n%s", fileErr)
	}
}

// TestTraceAndReportFlags checks that -trace writes a decodable Chrome
// trace containing the engine phases and -report prints the breakdown
// on stderr without disturbing stdout.
func TestTraceAndReportFlags(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "out.json")

	plainOut, _, rc := runCLI(t, "-alg", "permute", "-n", "2048", "-v", "8")
	if rc != 0 {
		t.Fatalf("plain run failed (rc=%d)", rc)
	}
	out, errb, rc := runCLI(t, "-alg", "permute", "-n", "2048", "-v", "8",
		"-state-dir", filepath.Join(dir, "state"), "-trace", trace, "-report")
	if rc != 0 {
		t.Fatalf("traced run failed (rc=%d): %s", rc, errb)
	}
	if out != plainOut {
		t.Errorf("tracing changed stdout:\n--- plain ---\n%s--- traced ---\n%s", plainOut, out)
	}
	if !strings.Contains(errb, "phase report") {
		t.Errorf("-report printed no phase report; stderr:\n%s", errb)
	}
	if strings.Contains(out, "phase report") {
		t.Errorf("phase report leaked onto stdout:\n%s", out)
	}

	data, err := os.ReadFile(trace)
	if err != nil {
		t.Fatalf("reading trace: %v", err)
	}
	evs, err := embsp.DecodeTrace(data)
	if err != nil {
		t.Fatalf("decoding trace: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range evs {
		names[ev.Name] = true
	}
	for _, want := range []string{"compute", "fetch-ctx", "write-ctx", "route", "barrier-sync", "journal-append", "phys-write"} {
		if !names[want] {
			t.Errorf("trace has no %q events; phases seen: %v", want, names)
		}
	}
}

// TestMetricsAddrFlag spins up the metrics endpoint on a free port and
// scrapes it once while the flag machinery still holds it open.
func TestMetricsAddrFlag(t *testing.T) {
	reg := embsp.NewMetricsRegistry()
	addr, err := embsp.ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("ServeMetrics: %v", err)
	}
	if _, _, rc := runCLI(t, "-alg", "sort", "-n", "1024", "-v", "4", "-metrics-addr", "127.0.0.1:0"); rc != 0 {
		t.Fatalf("run with -metrics-addr failed (rc=%d)", rc)
	}
	reg.Counter("smoke").Add(1)
	resp, err := http.Get(fmt.Sprintf("http://%s/metrics", addr))
	if err != nil {
		t.Fatalf("scraping /metrics: %v", err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	if _, err := body.ReadFrom(resp.Body); err != nil {
		t.Fatalf("reading body: %v", err)
	}
	if !strings.Contains(body.String(), "embsp_smoke 1") {
		t.Errorf("scrape missing embsp_smoke counter:\n%s", body.String())
	}
}
