package main

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"
)

// TestRunHelper is the CLI under test for the signal tests: they
// re-execute the test binary with this env set so a real process
// receives real signals.
func TestRunHelper(t *testing.T) {
	if os.Getenv("EMBSP_RUN_HELPER") != "1" {
		t.Skip("helper process for the signal tests")
	}
	os.Exit(run(strings.Split(os.Getenv("EMBSP_RUN_ARGS"), "\x1f"), os.Stdout, os.Stderr))
}

type signalBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (l *signalBuf) Write(p []byte) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.Write(p)
}

func (l *signalBuf) String() string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.b.String()
}

func waitFor(t *testing.T, what string, timeout time.Duration, pred func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !pred() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestSecondSignalForcesImmediateExit: the first SIGINT asks the run
// to stop at the next superstep barrier; a second one must not wait
// for the barrier — the process exits immediately with 130.
func TestSecondSignalForcesImmediateExit(t *testing.T) {
	state := t.TempDir()
	// 20ms per track keeps the next barrier minutes away, so only the
	// forced exit can finish this test quickly.
	args := []string{
		"-alg", "sort", "-n", "96", "-v", "6", "-seed", "3", "-b", "64",
		"-state-dir", state, "-drive-latency", "20ms",
	}
	cmd := exec.Command(os.Args[0], "-test.run", "TestRunHelper$")
	cmd.Env = append(os.Environ(),
		"EMBSP_RUN_HELPER=1",
		"EMBSP_RUN_ARGS="+strings.Join(args, "\x1f"))
	out := &signalBuf{}
	cmd.Stdout = out
	cmd.Stderr = out
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill() //nolint:errcheck
			cmd.Wait()         //nolint:errcheck
		}
	})

	// The journal HEAD appears once the run is underway.
	waitFor(t, "the run to start", 30*time.Second, func() bool {
		_, err := os.Stat(filepath.Join(state, "HEAD"))
		return err == nil
	})
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "the graceful-stop message", 10*time.Second, func() bool {
		return strings.Contains(out.String(), "stopping at the next superstep barrier")
	})
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { cmd.Wait(); close(done) }() //nolint:errcheck
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatalf("still alive 10s after the second SIGINT; output:\n%s", out)
	}
	if code := cmd.ProcessState.ExitCode(); code != 128+int(syscall.SIGINT) {
		t.Errorf("exit code %d, want %d; output:\n%s", code, 128+int(syscall.SIGINT), out)
	}
	if !strings.Contains(out.String(), "forcing immediate exit") {
		t.Errorf("missing force-exit message; output:\n%s", out)
	}
}
