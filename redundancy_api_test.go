package embsp_test

// The issue's acceptance property over the public API: every Table 1
// workload, run with parity redundancy and a permanent single-drive
// death mid-run, at P = 1 and P = 3, produces VP states bitwise
// identical to RunReference — degraded reads, scrub and online rebuild
// included — and EMStats shows the parity machinery actually worked.

import (
	"fmt"
	"testing"

	"embsp"
)

func TestParityPropertyTable1(t *testing.T) {
	const seed = 17
	for name, prog := range table1Programs(t) {
		t.Run(name, func(t *testing.T) {
			ref, err := embsp.RunReference(prog, seed)
			if err != nil {
				t.Fatal(err)
			}
			want := make([][]uint64, len(ref.VPs))
			for i, vp := range ref.VPs {
				want[i] = vpImage(vp)
			}
			for _, p := range []int{1, 3} {
				cfg := embsp.MachineConfig{
					P: p, M: 4 * prog.MaxContextWords(), D: 3, B: 32, G: 100,
					Cost: embsp.CostParams{GUnit: 1, GPkt: 64, Pkt: 64, L: 10},
				}
				plan := &embsp.FaultPlan{Seed: 23, FailDriveOp: 10, FailDrive: 1}
				res, err := embsp.Run(prog, cfg, embsp.Options{
					Seed:       seed,
					FaultPlan:  plan,
					Redundancy: embsp.RedundancyParity,
					Scrub:      true,
				})
				if err != nil {
					t.Fatalf("P=%d: %v", p, err)
				}
				for i, vp := range res.VPs {
					got := vpImage(vp)
					if fmt.Sprint(got) != fmt.Sprint(want[i]) {
						t.Fatalf("P=%d: VP %d context differs from reference after drive loss under parity", p, i)
					}
				}
				em := res.EM
				if em.DriveFailures != 1 {
					t.Errorf("P=%d: DriveFailures=%d, want 1", p, em.DriveFailures)
				}
				if em.ParityOps == 0 {
					t.Errorf("P=%d: parity enabled but ParityOps=0", p)
				}
				// Post-death activity: the drive's committed tracks are
				// reconstructed, rebuilt, or (when it held nothing at the
				// death) at least remapped writes charge degraded work.
				if em.ReconstructedBlocks+em.RebuiltBlocks+em.DegradedOps == 0 {
					t.Errorf("P=%d: drive died but no degraded or rebuild work is visible", p)
				}
				if em.ScrubbedBlocks == 0 {
					t.Errorf("P=%d: scrub enabled but ScrubbedBlocks=0", p)
				}
			}
		})
	}
}
